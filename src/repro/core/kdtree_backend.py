"""kd-tree backend for the single-tree EMST.

The paper notes its algorithms "are general and are applicable to other
tree structures such as k-d tree" (Section 1).  This module makes that
claim executable: a median-split kd-tree is built directly in the BVH
node layout (internal nodes ``0..n-2``, leaf for position ``i`` at
``n-1+i``), so the *entire* Borůvka machinery — label reduction, bound
seeding, batched Algorithm-2 traversal, merge — runs on it unchanged.

The leaf order is the kd-tree's left-to-right (in-order) sequence, which
is itself a space-filling order; the Z-curve-adjacency bound seeding of
Optimization 2 therefore still finds close cross-component pairs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.refit import bottom_up_schedule, refit_bounds
from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters


def kdtree_as_bvh(points: np.ndarray, *,
                  counters: Optional[CostCounters] = None) -> BVH:
    """Median-split kd-tree over ``points`` in the BVH node layout.

    Splits the widest box side at the point median down to single-point
    leaves.  Returns a :class:`~repro.bvh.bvh.BVH`, so every consumer of
    the LBVH (traversals, the Borůvka loop) works on it without change.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    n, dim = points.shape

    if n == 1:
        return BVH(
            points=points.copy(),
            order=np.zeros(1, dtype=np.int64),
            codes=np.zeros(1, dtype=np.uint64),
            left=np.empty(0, dtype=np.int64),
            right=np.empty(0, dtype=np.int64),
            parent=np.array([-1], dtype=np.int64),
            lo=points.copy(),
            hi=points.copy(),
            schedule=[],
        )

    perm = np.arange(n, dtype=np.int64)
    leaf_base = n - 1
    left = np.full(n - 1, -1, dtype=np.int64)
    right = np.full(n - 1, -1, dtype=np.int64)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)

    # Iterative construction.  Internal ids are assigned in discovery
    # order (root = 0); leaf positions are the in-order sequence, i.e. the
    # final state of `perm` read left to right.
    next_internal = 0

    def alloc_internal() -> int:
        nonlocal next_internal
        node = next_internal
        next_internal += 1
        return node

    root = alloc_internal()
    # Stack entries: (node_id, start, end) with end - start >= 2.
    stack = [(root, 0, n)]
    while stack:
        node, s, e = stack.pop()
        seg = perm[s:e]
        seg_pts = points[seg]
        widths = seg_pts.max(axis=0) - seg_pts.min(axis=0)
        axis = int(np.argmax(widths))
        mid = (e - s) // 2
        part = np.argpartition(seg_pts[:, axis], mid)
        perm[s:e] = seg[part]

        for child_slot, (cs, ce) in enumerate(((s, s + mid), (s + mid, e))):
            if ce - cs == 1:
                child = leaf_base + cs
            else:
                child = alloc_internal()
                stack.append((child, cs, ce))
            if child_slot == 0:
                left[node] = child
            else:
                right[node] = child
            parent[child] = node

    sorted_points = points[perm]
    schedule = bottom_up_schedule(left, right, n)
    lo, hi = refit_bounds(sorted_points, left, right, schedule, counters)
    if counters is not None:
        depth = max(int(np.ceil(np.log2(n))), 1)
        counters.record_bulk(n, ops_per_item=6.0 * depth,
                             bytes_per_item=16.0)
        counters.record_sort(n, bytes_per_item=16.0)
    return BVH(
        points=sorted_points,
        order=perm,
        codes=np.arange(n, dtype=np.uint64),  # synthetic, strictly sorted
        left=left,
        right=right,
        parent=parent,
        lo=lo,
        hi=hi,
        schedule=schedule,
    )
