"""``reduceLabels``: propagate component labels from leaves to internal nodes.

Figure 4 of the paper: an internal node whose two children carry the same
component label inherits it; otherwise it is marked invalid, meaning its
subtree spans multiple components and cannot be skipped.  The real GPU
kernel runs one thread per leaf walking upwards with an atomic hand-off; the
NumPy equivalent processes the precomputed bottom-up level schedule
(:func:`repro.bvh.refit.bottom_up_schedule`), one vectorized pass per level
— identical results, identical per-node work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.traversal import INVALID_LABEL
from repro.kokkos.counters import CostCounters


def reduce_labels(
    bvh: BVH,
    labels_sorted: np.ndarray,
    *,
    enabled: bool = True,
    out: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Per-node component labels over all ``2n - 1`` BVH nodes.

    ``labels_sorted[i]`` is the component of the point at sorted position
    ``i``.  Returns ``node_labels`` where entries are the common component
    of the node's subtree or :data:`INVALID_LABEL`.  A blocked leaf
    (``leaf_size > 1``) carries the common label of its point block when
    uniform, else :data:`INVALID_LABEL` — the traversal then applies the
    exact per-point constraint inside the block via ``point_labels``.

    ``enabled=False`` marks every internal node invalid — this is the
    ablation switch for Optimization 1 (leaf labels are still required for
    the block-level constraint itself).

    ``out`` may supply a preallocated ``(2m - 1,)`` int64 buffer
    (``m = bvh.n_leaves``), which the Borůvka loop reuses across
    iterations.
    """
    n = bvh.n
    labels_sorted = np.asarray(labels_sorted, dtype=np.int64)
    if labels_sorted.shape != (n,):
        raise ValueError(
            f"labels shape {labels_sorted.shape} does not match n={n}")

    if out is None:
        node_labels = np.empty(bvh.n_nodes, dtype=np.int64)
    else:
        node_labels = out
    leaf_base = bvh.leaf_base
    if bvh.n_leaves == n:
        node_labels[leaf_base:] = labels_sorted
    else:
        lab_min = np.minimum.reduceat(labels_sorted, bvh.leaf_start)
        lab_max = np.maximum.reduceat(labels_sorted, bvh.leaf_start)
        node_labels[leaf_base:] = np.where(lab_min == lab_max, lab_min,
                                           INVALID_LABEL)
    if bvh.n_leaves == 1:
        return node_labels

    if not enabled:
        node_labels[:leaf_base] = INVALID_LABEL
        if counters is not None:
            counters.record_bulk(n - 1, ops_per_item=1.0, bytes_per_item=8.0)
        return node_labels

    left, right = bvh.left, bvh.right
    for ids in bvh.schedule:
        lab_l = node_labels[left[ids]]
        lab_r = node_labels[right[ids]]
        node_labels[ids] = np.where(lab_l == lab_r, lab_l, INVALID_LABEL)
    if counters is not None:
        # One thread per leaf walking to the root: ~2(n-1) node updates.
        counters.record_bulk(n - 1, ops_per_item=4.0, bytes_per_item=24.0)
    return node_labels
