"""``findComponentsOutgoingEdges``: phase one of each Borůvka iteration.

Every point (SIMT lane) runs the constrained nearest-neighbor traversal of
Algorithm 2 over the shared BVH, producing a candidate edge per point; a
vectorized segmented reduction then selects, for every component, the
minimum candidate under the tie-broken total order ``(weight, min, max)``
— Figure 2 (c) and (d) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.traversal import batched_nearest
from repro.bvh.workspace import TraversalWorkspace
from repro.errors import ConvergenceError
from repro.kokkos.counters import CostCounters


@dataclass
class OutgoingEdges:
    """Shortest outgoing edge per active component (sorted positions).

    ``component[k]`` selected the edge ``(source[k], target[k])`` with
    squared weight ``weight_sq[k]``.  ``target_component[k]`` is the label
    of the component the edge points to.

    ``lane_position`` / ``lane_distance_sq`` expose every lane's own
    nearest-other-component candidate (position -1 where none): the
    Borůvka driver feeds them back as the next round's initial cutoff
    radii (warm frontier seeding) — a candidate that stays in a foreign
    component after the merge upper-bounds the lane's next-round answer.
    """

    component: np.ndarray
    source: np.ndarray
    target: np.ndarray
    weight_sq: np.ndarray
    target_component: np.ndarray
    lane_position: Optional[np.ndarray] = None
    lane_distance_sq: Optional[np.ndarray] = None


def find_components_outgoing_edges(
    bvh: BVH,
    labels_sorted: np.ndarray,
    node_labels: np.ndarray,
    upper_bounds_sq: np.ndarray,
    *,
    core_sq: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    workspace: Optional[TraversalWorkspace] = None,
    extra_radius_sq: Optional[np.ndarray] = None,
) -> OutgoingEdges:
    """Shortest outgoing edge for every active component.

    ``extra_radius_sq`` tightens each lane's initial cutoff below the
    component bound (warm frontier seeding); it must be a valid per-lane
    upper bound on an *admissible* candidate, which keeps results exact
    (bound-inclusive pruning never discards a tied minimum).

    Raises :class:`~repro.errors.ConvergenceError` if any component finds no
    candidate — impossible for a complete distance graph, so it indicates
    corrupted labels or non-finite data.
    """
    n = bvh.n
    positions = np.arange(n, dtype=np.int64)
    init_radius = upper_bounds_sq[labels_sorted]
    if extra_radius_sq is not None:
        init_radius = np.minimum(init_radius, extra_radius_sq)

    # Tie-break keys use the caller's *original* vertex indices (Section 2
    # of the paper breaks ties "using indices of the vertices"), so the
    # produced MST is identical to the explicit-graph algorithms' output
    # under the same total order regardless of the Z-curve permutation.
    result = batched_nearest(
        bvh,
        bvh.points,
        query_labels=labels_sorted,
        node_labels=node_labels,
        point_labels=labels_sorted,
        init_radius_sq=init_radius,
        query_ids=bvh.order,
        point_ids=bvh.order,
        query_core_sq=core_sq,
        point_core_sq=core_sq,
        counters=counters,
        workspace=workspace,
        self_queries=True,
    )

    found = result.found
    if not np.any(found):
        raise ConvergenceError("no outgoing edges found for any component")
    lanes = positions[found]
    comp = labels_sorted[lanes]
    dist = result.distance_sq[found]
    key = result.key[found]

    # Segmented min by component under (weight, key): sort and take heads.
    order = np.lexsort((key, dist, comp))
    comp_sorted = comp[order]
    heads = np.ones(comp_sorted.size, dtype=bool)
    heads[1:] = comp_sorted[1:] != comp_sorted[:-1]
    pick = order[heads]
    if counters is not None:
        counters.record_sort(comp.size, bytes_per_item=24.0)
        counters.record_bulk(comp.size, ops_per_item=2.0, bytes_per_item=16.0)

    source = lanes[pick]
    target = result.position[found][pick]
    active_components = np.unique(labels_sorted)
    if comp_sorted[heads].size != active_components.size:
        raise ConvergenceError(
            "a component found no outgoing edge; labels are inconsistent")
    return OutgoingEdges(
        component=comp[pick],
        source=source,
        target=target,
        weight_sq=dist[pick],
        target_component=labels_sorted[target],
        lane_position=result.position,
        lane_distance_sq=result.distance_sq,
    )
