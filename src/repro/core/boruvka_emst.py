"""The single-tree Borůvka driver (Figure 3 of the paper).

Runs the iteration

.. code-block:: none

    do {
        reduceLabels(...)                    # Optimization 1 prep
        computeUpperBounds(...)              # Optimization 2
        findComponentsOutgoingEdges(...)     # Algorithm 2, batched
        mergeComponents(...)
    } while (num_components > 1)

over a prebuilt BVH, accumulating the found MST edges and per-round
statistics.  Both optimizations are individually toggleable through
:class:`SingleTreeConfig` so the ablation benchmarks can quantify what the
paper motivates qualitatively ("critical on the later iterations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.workspace import TraversalWorkspace
from repro.errors import ConvergenceError
from repro.core.bounds import compute_upper_bounds
from repro.core.labels import reduce_labels
from repro.core.merge import merge_components
from repro.core.outgoing import find_components_outgoing_edges
from repro.kokkos.counters import CostCounters

#: Default points-per-leaf blocking factor, chosen by the
#: ``bench_kernels`` leaf-size sweep (see README "Performance"): on the
#: NumPy substrate, blocking defeats the component-label leaf skipping of
#: Optimization 1 (a mixed block cannot be skipped and costs a whole
#: block of exact distances), so single-point leaves win for the
#: label-constrained EMST kernel and blocking stays an opt-in knob.
DEFAULT_LEAF_SIZE = 1


@dataclass(frozen=True)
class SingleTreeConfig:
    """Algorithm switches.

    ``subtree_skipping`` / ``component_bounds`` toggle Optimizations 1 / 2.
    ``bits`` sets the Z-curve resolution of the BVH build (None = maximum;
    see the GeoLife discussion in Section 4.1); ``high_resolution`` uses
    double-width 128-bit codes instead — the paper's proposed GeoLife fix.
    ``record_rounds`` keeps per-iteration statistics (cheap; disable for
    the tightest benchmarks).  ``leaf_size`` blocks that many consecutive
    sorted positions per tree leaf (both backends); the traversal then
    evaluates whole blocks of exact distances per leaf visit, amortizing
    per-step overhead.  The default is the winner of the ``bench_kernels``
    leaf-size sweep; results are identical for every value.
    """

    subtree_skipping: bool = True
    component_bounds: bool = True
    bits: Optional[int] = None
    high_resolution: bool = False
    record_rounds: bool = True
    #: Spatial index backing the traversals: "bvh" (linear BVH, the paper's
    #: choice) or "kdtree" (the generality claim of Section 1).
    tree_type: str = "bvh"
    #: Max points per tree leaf (see :data:`DEFAULT_LEAF_SIZE`).
    leaf_size: int = DEFAULT_LEAF_SIZE
    #: Warm frontier seeding: each lane's previous-round candidate — when
    #: it survives the merge in a foreign component — becomes the next
    #: round's initial cutoff radius.  A valid admissible upper bound, so
    #: results are identical; later rounds prune to near-minimal work.
    warm_frontier: bool = True
    #: Z-curve window of the Optimization-2 bound scan (1 = the paper's
    #: adjacent-pairs scheme; wider windows tighten component bounds for
    #: a few extra vectorized passes).
    bound_window: int = 4


@dataclass
class RoundStats:
    """Work performed by one Borůvka iteration (for the ablation study)."""

    iteration: int
    components_before: int
    components_after: int
    distance_evals: int
    nodes_visited: int
    lane_steps: int
    warp_steps: int


@dataclass
class BoruvkaOutput:
    """Raw output of the Borůvka loop, in sorted-position space."""

    edges_u: np.ndarray
    edges_v: np.ndarray
    weights_sq: np.ndarray
    n_iterations: int
    rounds: List[RoundStats] = field(default_factory=list)


def run_boruvka(
    bvh: BVH,
    *,
    config: SingleTreeConfig = SingleTreeConfig(),
    core_sq: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> BoruvkaOutput:
    """Execute Borůvka iterations until a single component remains.

    ``core_sq`` switches the metric to mutual reachability (squared core
    distances per sorted position).  Returned edges are sorted positions;
    :func:`repro.core.emst.emst` translates to caller indices.
    ``workspace`` supplies reusable traversal scratch (stacks, frontier
    buffers); one is created — and reused across every round — when
    omitted.
    """
    n = bvh.n
    if n == 1:
        return BoruvkaOutput(
            edges_u=np.empty(0, dtype=np.int64),
            edges_v=np.empty(0, dtype=np.int64),
            weights_sq=np.empty(0, dtype=np.float64),
            n_iterations=0,
        )

    counters = counters if counters is not None else CostCounters()
    workspace = workspace if workspace is not None else TraversalWorkspace()
    labels = np.arange(n, dtype=np.int64)
    node_labels = np.empty(bvh.n_nodes, dtype=np.int64)
    num_components = n

    out_u: List[np.ndarray] = []
    out_v: List[np.ndarray] = []
    out_w: List[np.ndarray] = []
    rounds: List[RoundStats] = []

    # Theoretical bound: components at least halve per round.
    max_iterations = int(np.ceil(np.log2(n))) + 2
    iteration = 0
    prev_pos: Optional[np.ndarray] = None
    prev_d: Optional[np.ndarray] = None
    while num_components > 1:
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"Borůvka exceeded {max_iterations} iterations "
                f"({num_components} components left)")
        before = counters.copy() if config.record_rounds else None

        reduce_labels(bvh, labels, enabled=config.subtree_skipping,
                      out=node_labels, counters=counters)
        upper = compute_upper_bounds(bvh, labels,
                                     enabled=config.component_bounds,
                                     core_sq=core_sq,
                                     window=config.bound_window,
                                     counters=counters)
        extra_radius = None
        if config.warm_frontier and prev_pos is not None:
            # A lane's previous candidate still in a foreign component is
            # an admissible edge this round too — its distance is a valid
            # (often near-optimal) per-lane cutoff.
            target = np.maximum(prev_pos, 0)
            valid = (prev_pos >= 0) & (labels[target] != labels)
            extra_radius = np.where(valid, prev_d, np.inf)
        edges = find_components_outgoing_edges(
            bvh, labels, node_labels, upper,
            core_sq=core_sq, counters=counters, workspace=workspace,
            extra_radius_sq=extra_radius)
        prev_pos = edges.lane_position
        prev_d = edges.lane_distance_sq

        # Each undirected MST edge may be selected by both of its
        # components (mutual pairs select the identical edge — Section 2's
        # total-order argument); keep one copy.
        lo = np.minimum(edges.source, edges.target)
        hi = np.maximum(edges.source, edges.target)
        uniq = np.unique(np.stack([lo, hi], axis=1), axis=0, return_index=True)[1]
        out_u.append(lo[uniq])
        out_v.append(hi[uniq])
        out_w.append(edges.weight_sq[uniq])

        labels, new_count = merge_components(labels, n, edges,
                                             counters=counters)
        if new_count >= num_components:
            raise ConvergenceError(
                f"merge did not reduce components: {num_components} -> "
                f"{new_count}")
        if config.record_rounds:
            delta = counters.copy()
            for name, val in before.as_dict().items():
                if name != "max_batch":
                    setattr(delta, name, getattr(delta, name) - val)
            rounds.append(RoundStats(
                iteration=iteration,
                components_before=num_components,
                components_after=new_count,
                distance_evals=delta.distance_evals,
                nodes_visited=delta.nodes_visited,
                lane_steps=delta.lane_steps,
                warp_steps=delta.warp_steps,
            ))
        num_components = new_count
        iteration += 1

    edges_u = np.concatenate(out_u)
    edges_v = np.concatenate(out_v)
    weights_sq = np.concatenate(out_w)
    if edges_u.size != n - 1:
        raise ConvergenceError(
            f"produced {edges_u.size} edges for n={n}; expected {n - 1}")
    return BoruvkaOutput(edges_u=edges_u, edges_v=edges_v,
                         weights_sq=weights_sq,
                         n_iterations=iteration, rounds=rounds)
