"""``mergeComponents``: phase two of each Borůvka iteration.

The selected outgoing edges define a successor function on components.
Because every component points to the component of its *minimum* cut edge
under a strict total order, the functional graph's only cycles are mutual
pairs (two components whose shortest outgoing edges point at each other —
Section 2).  Each chain therefore terminates in exactly one mutual pair;
the paper merges whole chains at once by relabelling every point to the
minimum-index component of its chain's terminal pair.  The NumPy
realization pointer-jumps the successor array (``O(log chain length)``
vectorized passes) — embarrassingly parallel, as the paper notes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError
from repro.kokkos.counters import CostCounters
from repro.core.outgoing import OutgoingEdges


def merge_components(
    labels_sorted: np.ndarray,
    n: int,
    edges: OutgoingEdges,
    *,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, int]:
    """New point labels after merging along the found edges.

    Returns ``(new_labels, n_components)``.  Labels remain component
    representatives' sorted positions; the new label of a chain is the
    minimum label of its terminal mutual pair, matching the paper.
    """
    succ = np.arange(n, dtype=np.int64)
    succ[edges.component] = edges.target_component

    comp = edges.component
    # Terminal mutual pairs: succ(succ(c)) == c.  Both members adopt the
    # smaller label, turning each 2-cycle into a fixed point.
    mutual = succ[succ[comp]] == comp
    pair_min = np.minimum(comp[mutual], succ[comp[mutual]])
    succ[comp[mutual]] = pair_min

    # Pointer jumping until every chain reaches its fixed point.
    max_jumps = int(np.ceil(np.log2(max(n, 2)))) + 2
    for _ in range(max_jumps):
        nxt = succ[succ]
        if np.array_equal(nxt, succ):
            break
        succ = nxt
    else:
        if not np.array_equal(succ[succ], succ):
            raise ConvergenceError(
                "component chains failed to collapse; the selected edges "
                "contain a cycle longer than 2 (broken tie-breaking)")

    new_labels = succ[labels_sorted]
    n_components = int(np.unique(new_labels).size)
    if counters is not None:
        counters.record_bulk(n, ops_per_item=4.0, bytes_per_item=16.0)
    return new_labels, n_components
