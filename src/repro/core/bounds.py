"""``computeUpperBounds``: seed per-component cutoff radii (Optimization 2).

The distance between any pair of points in *different* components upper
bounds both components' shortest outgoing edges.  Good pairs should be
close; the paper exploits the Z-curve ordering already produced by the BVH
construction — *adjacent* positions on the curve are usually geometrically
close — and scans consecutive sorted pairs with differing labels (Section 3).

Under the mutual-reachability metric the bound must be the m.r.d. of the
pair (``max`` of the Euclidean distance and both core distances), which is
still an upper bound for the same reason.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.geometry.distance import points_sq
from repro.kokkos.counters import CostCounters


def compute_upper_bounds(
    bvh: BVH,
    labels_sorted: np.ndarray,
    *,
    enabled: bool = True,
    core_sq: Optional[np.ndarray] = None,
    window: int = 1,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Squared upper bound on the shortest outgoing edge per component.

    Returns an array indexed by component label (labels are sorted
    positions, so size ``n``); entries of inactive labels stay ``inf``.
    With ``enabled=False`` (the Optimization-2 ablation) all entries are
    ``inf`` and traversals start unbounded.

    ``window`` scans Z-curve pairs up to that many positions apart
    (the paper's scheme is ``window=1``).  Every cross-component pair is a
    valid upper bound, so a wider window can only tighten bounds — each
    extra offset costs one vectorized pass and pays for itself by
    shrinking every traversal's initial search radius.

    Every active component receives a finite bound when there are >= 2
    components: any maximal run of equal labels on the Z-curve borders a
    different label on at least one side.
    """
    n = bvh.n
    labels_sorted = np.asarray(labels_sorted, dtype=np.int64)
    if labels_sorted.shape != (n,):
        raise ValueError(
            f"labels shape {labels_sorted.shape} does not match n={n}")
    if window < 1:
        raise ValueError(f"bound window must be >= 1, got {window}")
    bounds = np.full(n, np.inf)
    if not enabled or n < 2:
        return bounds
    if core_sq is not None:
        core_sq = np.asarray(core_sq, dtype=np.float64)

    pairs = 0
    for off in range(1, min(window, n - 1) + 1):
        la = labels_sorted[:-off]
        lb = labels_sorted[off:]
        straddling = np.nonzero(la != lb)[0]
        if straddling.size == 0:
            continue
        d = points_sq(bvh.points[straddling], bvh.points[straddling + off])
        if core_sq is not None:
            d = np.maximum(d, core_sq[straddling])
            d = np.maximum(d, core_sq[straddling + off])
        np.minimum.at(bounds, la[straddling], d)
        np.minimum.at(bounds, lb[straddling], d)
        pairs += straddling.size
    if counters is not None:
        counters.record_bulk(n, ops_per_item=3.0 * window,
                             bytes_per_item=16.0 * window)
        counters.distance_evals += pairs
    return bounds
