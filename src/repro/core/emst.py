"""Public EMST API: :func:`emst` and :func:`mutual_reachability_emst`.

These are the library's main entry points, corresponding to the paper's
ArborX implementation.  Both return an :class:`EMSTResult` carrying the tree
edges (in the caller's point indexing), per-phase wall-clock timings and
per-phase work counters — everything the benchmark harness needs to price
the run on the simulated devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bvh.bvh import BVH, build_bvh
from repro.bvh.traversal import batched_knn
from repro.bvh.workspace import TraversalWorkspace
from repro.errors import InvalidInputError
from repro.core.boruvka_emst import (
    BoruvkaOutput,
    RoundStats,
    SingleTreeConfig,
    run_boruvka,
)
from repro.kokkos.counters import CostCounters
from repro.timing import PhaseTimer


@dataclass
class EMSTResult:
    """A Euclidean (or mutual-reachability) minimum spanning tree.

    ``edges`` is ``(n-1, 2)`` in the caller's indexing with
    ``edges[:, 0] < edges[:, 1]``; ``weights`` are metric distances (not
    squared).  ``phases`` maps phase name (``tree``, ``mst``, and ``core``
    for m.r.d. runs) to wall-clock seconds, ``counters`` to the measured
    work of that phase; ``rounds`` holds per-Borůvka-iteration statistics.
    """

    edges: np.ndarray
    weights: np.ndarray
    n_points: int
    dimension: int
    n_iterations: int
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, CostCounters] = field(default_factory=dict)
    rounds: List[RoundStats] = field(default_factory=list)
    #: Squared core distances in the caller's point order, set by
    #: :func:`mutual_reachability_emst` only (``None`` for Euclidean runs).
    #: Deliberately tree-independent (caller order, not BVH order) so the
    #: serving engine can cache it keyed by ``(points, k_pts)`` alone and
    #: inject it back through ``core_sq=`` to skip the ``core`` phase.
    #: Not part of the serialized payload.
    core_sq: Optional[np.ndarray] = field(default=None, repr=False,
                                          compare=False)

    @property
    def total_weight(self) -> float:
        """Sum of edge weights."""
        return float(np.sum(self.weights))

    @property
    def total_counters(self) -> CostCounters:
        """All phases' work merged (for whole-run cost-model pricing)."""
        total = CostCounters()
        for c in self.counters.values():
            total.add(c)
        return total

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock seconds across phases."""
        return float(sum(self.phases.values()))


def _validate_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if points.shape[1] not in (2, 3):
        raise InvalidInputError(
            f"single-tree EMST supports d in (2, 3), got d={points.shape[1]}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    return points


def _finalize(points: np.ndarray, bvh: BVH, output: BoruvkaOutput,
              timer: PhaseTimer, counters: Dict[str, CostCounters]
              ) -> EMSTResult:
    # Translate sorted positions back to the caller's indexing and
    # canonicalize edge order (by weight, then endpoints) for stable output.
    u = bvh.order[output.edges_u]
    v = bvh.order[output.edges_v]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    w = np.sqrt(output.weights_sq)
    order = np.lexsort((hi, lo, w))
    edges = np.stack([lo[order], hi[order]], axis=1)
    return EMSTResult(
        edges=edges,
        weights=w[order],
        n_points=points.shape[0],
        dimension=points.shape[1],
        n_iterations=output.n_iterations,
        phases=timer.as_dict(),
        counters=counters,
        rounds=output.rounds,
    )


def _build_tree(points: np.ndarray, config: SingleTreeConfig,
                counters: CostCounters) -> BVH:
    """Construct the spatial index selected by ``config.tree_type``."""
    if config.tree_type == "bvh":
        return build_bvh(points, bits=config.bits,
                         high_resolution=config.high_resolution,
                         leaf_size=config.leaf_size,
                         counters=counters)
    if config.tree_type == "kdtree":
        if config.bits is not None or config.high_resolution:
            raise InvalidInputError(
                "Morton-resolution options apply to the BVH backend only")
        from repro.core.kdtree_backend import kdtree_as_bvh
        return kdtree_as_bvh(points, leaf_size=config.leaf_size,
                             counters=counters)
    raise InvalidInputError(
        f"unknown tree_type {config.tree_type!r}; use 'bvh' or 'kdtree'")


def build_tree(
    points: np.ndarray,
    *,
    config: SingleTreeConfig = SingleTreeConfig(),
    counters: Optional[CostCounters] = None,
) -> BVH:
    """Construct the spatial index :func:`emst` would build for ``points``.

    Exposed so callers that run several algorithms over the same point set
    (notably the :mod:`repro.service` engine, which caches trees by content
    fingerprint) can amortize the construction phase: pass the returned tree
    back through the ``bvh=`` parameter of :func:`emst` /
    :func:`mutual_reachability_emst` to skip their ``tree`` phase.
    """
    points = _validate_points(points)
    return _build_tree(points, config,
                       counters if counters is not None else CostCounters())


def _check_injected_tree(points: np.ndarray, bvh: BVH,
                         check_coords: bool = True) -> None:
    """Validate that a caller-supplied tree actually indexes ``points``.

    The coordinate comparison is O(n*d); callers that already guarantee
    identity another way (the service engine keys trees by a content
    fingerprint of the exact point bytes) pass ``check_coords=False`` to
    keep only the O(1) shape check.
    """
    if bvh.n != points.shape[0] or bvh.dim != points.shape[1]:
        raise InvalidInputError(
            f"injected tree indexes {bvh.n} {bvh.dim}D points, "
            f"got {points.shape[0]} {points.shape[1]}D points")
    if check_coords and not np.array_equal(bvh.points, points[bvh.order]):
        raise InvalidInputError(
            "injected tree was built over different point coordinates")


def emst(
    points: np.ndarray,
    *,
    config: SingleTreeConfig = SingleTreeConfig(),
    bvh: Optional[BVH] = None,
    check_tree: bool = True,
    workspace: Optional[TraversalWorkspace] = None,
) -> EMSTResult:
    """Euclidean minimum spanning tree of ``points`` (the paper's algorithm).

    ``bvh`` injects a precomputed tree from :func:`build_tree` (it must have
    been built over the same points and tree configuration); the ``tree``
    phase is then reported as zero seconds and zero work.  ``check_tree``
    controls whether the injected tree's coordinates are verified against
    ``points`` (an O(n*d) pass); disable only when identity is guaranteed
    by construction.  ``workspace`` supplies reusable traversal scratch —
    the serving executor passes one per worker thread so consecutive jobs
    skip stack reallocation.

    Example
    -------
    >>> import numpy as np
    >>> result = emst(np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]]))
    >>> result.edges.tolist()
    [[0, 1], [1, 2]]
    >>> result.weights.tolist()
    [1.0, 2.0]
    """
    points = _validate_points(points)
    timer = PhaseTimer()
    tree_counters = CostCounters()
    mst_counters = CostCounters()
    if bvh is None:
        with timer.phase("tree"):
            bvh = _build_tree(points, config, tree_counters)
    else:
        _check_injected_tree(points, bvh, check_tree)
        timer.add("tree", 0.0)
    with timer.phase("mst"):
        output = run_boruvka(bvh, config=config, counters=mst_counters,
                             workspace=workspace)
    return _finalize(points, bvh, output, timer,
                     {"tree": tree_counters, "mst": mst_counters})


def mutual_reachability_emst(
    points: np.ndarray,
    k_pts: int,
    *,
    config: SingleTreeConfig = SingleTreeConfig(),
    bvh: Optional[BVH] = None,
    check_tree: bool = True,
    core_sq: Optional[np.ndarray] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> EMSTResult:
    """MST under the mutual-reachability distance (HDBSCAN*, Section 4.5).

    ``d_mreach(u, v) = max(d_core(u), d_core(v), |u - v|)`` where
    ``d_core(u)`` is the distance to u's ``k_pts``-th nearest neighbor,
    *including the point itself*.  ``k_pts=1`` reduces to the Euclidean
    metric exactly.

    Adds a ``core`` phase (the paper's ``T_core``) computing all core
    distances with a batched k-NN over the same BVH.  ``core_sq`` injects
    precomputed *squared* core distances in the caller's point order (the
    ``core_sq`` attribute of an earlier result over the same points and
    ``k_pts``); the ``core`` phase is then reported as zero seconds and
    zero work, mirroring ``bvh=`` injection for the ``tree`` phase.  The
    caller is responsible for the values matching ``(points, k_pts)`` —
    the serving engine guarantees it by content fingerprint.
    """
    points = _validate_points(points)
    if k_pts < 1:
        raise InvalidInputError(f"k_pts must be >= 1, got {k_pts}")
    if k_pts > points.shape[0]:
        raise InvalidInputError(
            f"k_pts={k_pts} exceeds the number of points {points.shape[0]}")
    timer = PhaseTimer()
    tree_counters = CostCounters()
    core_counters = CostCounters()
    mst_counters = CostCounters()
    if bvh is None:
        with timer.phase("tree"):
            bvh = _build_tree(points, config, tree_counters)
    else:
        _check_injected_tree(points, bvh, check_tree)
        timer.add("tree", 0.0)
    if workspace is None:
        workspace = TraversalWorkspace()
    if core_sq is None:
        with timer.phase("core"):
            knn = batched_knn(bvh, bvh.points, k_pts,
                              counters=core_counters, workspace=workspace,
                              self_queries=True)
            core_sorted = knn.kth_distance_sq.copy()
        core_caller = np.empty(points.shape[0], dtype=np.float64)
        core_caller[bvh.order] = core_sorted
    else:
        core_caller = np.asarray(core_sq, dtype=np.float64)
        if core_caller.shape != (points.shape[0],):
            raise InvalidInputError(
                f"core_sq must have shape ({points.shape[0]},), "
                f"got {core_caller.shape}")
        if not np.all(np.isfinite(core_caller)):
            raise InvalidInputError(
                "core_sq contains non-finite values")
        timer.add("core", 0.0)
        # Fancy indexing copies, so the caller's array is never mutated.
        core_sorted = core_caller[bvh.order]
    with timer.phase("mst"):
        output = run_boruvka(bvh, config=config, core_sq=core_sorted,
                             counters=mst_counters, workspace=workspace)
    result = _finalize(points, bvh, output, timer,
                       {"tree": tree_counters, "core": core_counters,
                        "mst": mst_counters})
    result.core_sq = core_caller
    return result
