"""The paper's contribution: single-tree Borůvka EMST for GPUs.

The algorithm (Section 3, Figure 3) iterates two phases until one component
remains:

1. ``findComponentsOutgoingEdges`` — every point runs a constrained nearest
   neighbor traversal (Algorithm 2) over one shared BVH, with

   * **subtree skipping** (Optimization 1): component labels are first
     propagated bottom-up to internal nodes (``reduceLabels``,
     :mod:`repro.core.labels`), letting traversals bypass subtrees fully
     inside the query's own component, and
   * **component upper bounds** (Optimization 2): Z-curve-adjacent point
     pairs straddling two components seed per-component cutoff radii
     (``computeUpperBounds``, :mod:`repro.core.bounds`);

   a per-component reduction then selects each component's shortest
   outgoing edge under the tie-broken total order.

2. ``mergeComponents`` — the selected edges form chains ending in mutual
   pairs; labels pointer-jump to the minimum-index component of their chain
   (:mod:`repro.core.merge`).

The public entry points are :func:`repro.core.emst.emst` and
:func:`repro.core.emst.mutual_reachability_emst`.
"""

from repro.core.emst import EMSTResult, emst, mutual_reachability_emst
from repro.core.boruvka_emst import RoundStats, SingleTreeConfig
from repro.core.labels import reduce_labels
from repro.core.bounds import compute_upper_bounds
from repro.core.merge import merge_components

__all__ = [
    "emst",
    "mutual_reachability_emst",
    "EMSTResult",
    "SingleTreeConfig",
    "RoundStats",
    "reduce_labels",
    "compute_upper_bounds",
    "merge_components",
]
