"""Content-addressed caching for the serving engine (now in repro.store).

This module used to define the fingerprint scheme and the in-memory LRU
tier; both moved to :mod:`repro.store` when the persistent artifact store
landed, so the serving engine and the disk store key artifacts with the
**one** SHA-256 scheme (:mod:`repro.store.fingerprint` — previously
copy-pasted wherever a key was needed, which risked silently forking the
on-disk key space).  Everything is re-exported here so existing imports
keep working:

* :func:`fingerprint_array` / :func:`combine_fingerprint` /
  :func:`fingerprint` — the content-keying scheme,
* :class:`ContentCache` / :func:`estimate_nbytes` — the in-memory tier,
* :class:`TieredCache` — the memory → disk facade the engine's three tiers
  (tree, result, core-distance) are built from.
"""

from __future__ import annotations

from repro.store.fingerprint import (
    combine_fingerprint,
    fingerprint,
    fingerprint_array,
)
from repro.store.memory import ContentCache, estimate_nbytes
from repro.store.tiered import TieredCache

__all__ = [
    "ContentCache",
    "TieredCache",
    "combine_fingerprint",
    "estimate_nbytes",
    "fingerprint",
    "fingerprint_array",
]
