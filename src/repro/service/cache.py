"""Content-addressed, byte-bounded LRU caching for the serving engine.

Keys are SHA-256 fingerprints of the *content* a value was derived from
(point-array bytes plus a canonical parameter string), so two jobs that
submit equal data — whether inline or through the same dataset spec — hit
the same entry, and any change to the data or configuration misses cleanly.

The engine runs two tiers of :class:`ContentCache`:

* a **tree cache** holding built :class:`~repro.bvh.bvh.BVH` objects, which
  lets repeated EMST / m.r.d. / HDBSCAN jobs over the same points skip the
  construction phase (the paper's ``T_tree``), and
* a **result cache** holding serialized :class:`~repro.service.jobs.JobResult`
  payloads, which answers exact repeats without touching a worker.

Eviction is least-recently-used under a byte budget; entry sizes come from
:func:`estimate_nbytes`.  Hit/miss counters are reported through
:func:`repro.metrics.hit_rate` so the service statistics use the same rate
conventions as the benchmark harness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import sys
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.metrics import hit_rate


def fingerprint_array(points: np.ndarray) -> str:
    """SHA-256 content fingerprint of an array (dtype, shape and bytes).

    The dtype and shape are mixed into the digest so e.g. a ``(6,)`` float
    array cannot collide with a ``(3, 2)`` one over the same buffer.
    """
    points = np.ascontiguousarray(points)
    digest = hashlib.sha256()
    digest.update(str(points.dtype).encode())
    digest.update(str(points.shape).encode())
    digest.update(points.tobytes())
    return digest.hexdigest()


def combine_fingerprint(array_fingerprint: str, params: str) -> str:
    """Cache key from a precomputed array digest and a parameter string.

    Lets callers hash a large point buffer once and derive several keys
    (result tier, tree tier) from the digest.
    """
    digest = hashlib.sha256()
    digest.update(array_fingerprint.encode())
    digest.update(b"\x00")
    digest.update(params.encode())
    return digest.hexdigest()


def fingerprint(points: np.ndarray, params: str = "") -> str:
    """Cache key for (points content, canonical parameter string)."""
    return combine_fingerprint(fingerprint_array(points), params)


def estimate_nbytes(value: Any) -> int:
    """Approximate heap footprint of a cached value, in bytes.

    Counts array buffers exactly and walks containers and dataclasses
    (covering :class:`~repro.bvh.bvh.BVH` and serialized result payloads);
    everything else falls back to ``sys.getsizeof``.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(estimate_nbytes(getattr(value, f.name))
                   for f in dataclasses.fields(value))
    if isinstance(value, dict):
        return sum(estimate_nbytes(k) + estimate_nbytes(v)
                   for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(item) for item in value)
    return int(sys.getsizeof(value))


class ContentCache:
    """A thread-safe LRU cache bounded by total byte size.

    ``get`` refreshes recency; ``put`` evicts least-recently-used entries
    until the new value fits.  A value larger than the whole budget is
    rejected (counted in ``oversized``) rather than flushing the cache.
    """

    def __init__(self, max_bytes: int, *, name: str = "cache") -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.name = name
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._current_bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key`` (refreshing recency) or ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: Any,
            nbytes: Optional[int] = None) -> bool:
        """Insert ``value`` under ``key``; returns whether it was stored.

        ``nbytes`` overrides the :func:`estimate_nbytes` size estimate.
        """
        size = int(nbytes) if nbytes is not None else estimate_nbytes(value)
        with self._lock:
            if size > self.max_bytes:
                self.oversized += 1
                return False
            if key in self._entries:
                self._current_bytes -= self._sizes[key]
                del self._entries[key]
            while self._current_bytes + size > self.max_bytes:
                old_key, _ = self._entries.popitem(last=False)
                self._current_bytes -= self._sizes.pop(old_key)
                self.evictions += 1
            self._entries[key] = value
            self._sizes[key] = size
            self._current_bytes += size
            return True

    def size_of(self, key: str) -> Optional[int]:
        """The stored byte estimate for ``key`` (no recency effect)."""
        with self._lock:
            return self._sizes.get(key)

    def keys(self) -> List[str]:
        """Keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._current_bytes = 0

    @property
    def current_bytes(self) -> int:
        """Total estimated bytes of the stored entries."""
        with self._lock:
            return self._current_bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache."""
        return hit_rate(self.hits, self.misses)

    def stats(self) -> Dict[str, Any]:
        """Counters and occupancy, JSON-safe."""
        with self._lock:
            return {
                "name": self.name,
                "entries": len(self._entries),
                "current_bytes": self._current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": hit_rate(self.hits, self.misses),
                "evictions": self.evictions,
                "oversized": self.oversized,
            }
