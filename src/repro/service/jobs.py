"""Job specifications and serializable results for the serving engine.

A :class:`JobSpec` names *what* to compute — a point source (inline array or
``dataset:NAME:N[:SEED]`` spec), an algorithm (``emst`` | ``mrd_emst`` |
``hdbscan``), the :class:`~repro.core.boruvka_emst.SingleTreeConfig` knobs
and a scheduling priority.  A :class:`JobResult` carries the outcome in
plain-dict form so it survives a JSON round trip through the HTTP front end;
:func:`emst_result_to_dict` / :func:`emst_result_from_dict` (and the HDBSCAN
pair) losslessly convert the library's result dataclasses.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from enum import Enum
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.boruvka_emst import RoundStats, SingleTreeConfig
from repro.core.emst import EMSTResult
from repro.errors import InvalidInputError
from repro.hdbscan.condense import CondensedTree
from repro.hdbscan.hdbscan import HDBSCANResult
from repro.kokkos.counters import CostCounters

#: Algorithms the engine can serve.
ALGORITHMS = ("emst", "mrd_emst", "hdbscan")


class JobStatus(str, Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def finished(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self in (JobStatus.DONE, JobStatus.FAILED)


@dataclass
class JobSpec:
    """One unit of servable work.

    Exactly one of ``points`` (an inline ``(n, d)`` array) or ``dataset``
    (a ``NAME:N[:SEED]`` generator spec, with or without the CLI's
    ``dataset:`` prefix) must be given.  ``k_pts`` applies to ``mrd_emst``
    and ``hdbscan``; ``min_cluster_size`` to ``hdbscan`` only.  Higher
    ``priority`` jobs leave the scheduler queue first.
    """

    points: Optional[np.ndarray] = None
    dataset: Optional[str] = None
    algorithm: str = "emst"
    config: SingleTreeConfig = field(default_factory=SingleTreeConfig)
    k_pts: int = 5
    min_cluster_size: int = 5
    priority: int = 0
    #: Memoized validate() verdict — the O(n*d) point scan runs once even
    #: though from_dict, Engine.submit and resolve_points all validate.
    #: Treat a spec as immutable once validated.
    _validated: bool = field(default=False, init=False, repr=False,
                             compare=False)

    def validate(self) -> None:
        """Raise :class:`InvalidInputError` on an inconsistent spec."""
        if self._validated:
            return
        if (self.points is None) == (self.dataset is None):
            raise InvalidInputError(
                "exactly one of points or dataset must be given")
        if self.points is not None:
            # A raw (possibly ragged) list can make asarray itself raise;
            # that is still a bad *input*, not an internal error.
            try:
                arr = np.asarray(self.points)
            except (TypeError, ValueError, OverflowError) as exc:
                raise InvalidInputError(f"bad inline points: {exc}") from exc
            if arr.ndim != 2 or arr.shape[0] == 0:
                raise InvalidInputError(
                    f"inline points must be a non-empty (n, d) array, "
                    f"got shape {arr.shape}")
            if arr.dtype.kind == "c":
                raise InvalidInputError(
                    "complex points are not supported")
            # Apply the core layer's constraints up front so a bad job is
            # a synchronous error, not an accepted-then-failed one.
            from repro.core.emst import _validate_points
            try:
                _validate_points(arr)
            except InvalidInputError:
                raise
            except (TypeError, ValueError) as exc:
                raise InvalidInputError(f"bad inline points: {exc}")
        if self.dataset is not None:
            from repro.data import parse_dataset_spec
            parse_dataset_spec(self.dataset)  # malformed specs fail at submit
        for name in ("subtree_skipping", "component_bounds",
                     "high_resolution", "record_rounds", "warm_frontier"):
            if not isinstance(getattr(self.config, name), bool):
                raise InvalidInputError(
                    f"config.{name} must be a boolean, "
                    f"got {getattr(self.config, name)!r}")
        bits = self.config.bits
        if bits is not None and (not isinstance(bits, int)
                                 or isinstance(bits, bool)):
            raise InvalidInputError(
                f"config.bits must be an integer or null, got {bits!r}")
        for name in ("leaf_size", "bound_window"):
            value = getattr(self.config, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise InvalidInputError(
                    f"config.{name} must be a positive integer, "
                    f"got {value!r}")
        if self.config.tree_type not in ("bvh", "kdtree"):
            raise InvalidInputError(
                f"config.tree_type must be 'bvh' or 'kdtree', "
                f"got {self.config.tree_type!r}")
        if self.config.tree_type == "kdtree" and (
                bits is not None or self.config.high_resolution):
            raise InvalidInputError(
                "Morton-resolution options apply to the BVH backend only")
        if self.algorithm not in ALGORITHMS:
            raise InvalidInputError(
                f"unknown algorithm {self.algorithm!r}; "
                f"use one of {', '.join(ALGORITHMS)}")
        for name in ("k_pts", "min_cluster_size", "priority"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise InvalidInputError(
                    f"{name} must be an integer, got {value!r}")
        if self.k_pts < 1:
            raise InvalidInputError(f"k_pts must be >= 1, got {self.k_pts}")
        if self.algorithm == "hdbscan" and self.min_cluster_size < 2:
            raise InvalidInputError(
                f"min_cluster_size must be >= 2, got {self.min_cluster_size}")
        self._validated = True

    def resolve_points(self) -> np.ndarray:
        """Materialize the point array this job operates on."""
        self.validate()
        if self.points is not None:
            return np.asarray(self.points, dtype=np.float64)
        from repro.data import generate_from_spec
        return generate_from_spec(self.dataset)

    def params_key(self) -> str:
        """Canonical string of everything but the points.

        Two jobs with equal ``params_key()`` over byte-identical points
        compute the same answer — the result-cache key component.
        """
        cfg = ",".join(f"{f.name}={getattr(self.config, f.name)!r}"
                       for f in fields(self.config))
        parts = [f"algorithm={self.algorithm}", f"config=({cfg})"]
        if self.algorithm in ("mrd_emst", "hdbscan"):
            parts.append(f"k_pts={self.k_pts}")
        if self.algorithm == "hdbscan":
            parts.append(f"min_cluster_size={self.min_cluster_size}")
        return ";".join(parts)

    def tree_key(self) -> str:
        """Canonical string of the knobs the spatial index depends on.

        Deliberately independent of the algorithm and its metric parameters:
        an ``emst`` job and an ``hdbscan`` job over the same points share one
        cached tree.  ``leaf_size`` shapes the tree itself (blocked
        leaves), so it is part of the key — trees cached before the
        blocking release simply age out of the store.
        """
        return (f"tree_type={self.config.tree_type};"
                f"bits={self.config.bits};"
                f"high_resolution={self.config.high_resolution};"
                f"leaf_size={self.config.leaf_size}")

    def core_key(self) -> str:
        """Canonical string the core-distance artifact depends on.

        Only ``k_pts`` — cached core distances are stored squared, in the
        caller's point order, so they are independent of the tree
        configuration *and* of which algorithm (``mrd_emst`` or
        ``hdbscan``) asked for them.
        """
        return f"core;k_pts={self.k_pts}"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        out: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "config": asdict(self.config),
            "k_pts": self.k_pts,
            "min_cluster_size": self.min_cluster_size,
            "priority": self.priority,
        }
        if self.dataset is not None:
            out["dataset"] = self.dataset
        if self.points is not None:
            out["points"] = np.asarray(self.points, dtype=np.float64).tolist()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Build a spec from a plain dict (e.g. a decoded HTTP body)."""
        if not isinstance(data, dict):
            raise InvalidInputError(
                f"job spec must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in fields(cls) if not f.name.startswith("_")}
        unknown = set(data) - known
        if unknown:
            raise InvalidInputError(
                f"unknown job spec fields: {', '.join(sorted(unknown))}")
        kwargs = dict(data)
        if "points" in kwargs:
            # OverflowError: JSON integers are unbounded, float64 is not —
            # a body like [[1, 1e999-as-int]] must be a 400, not a crashed
            # handler.
            try:
                kwargs["points"] = np.asarray(kwargs["points"],
                                              dtype=np.float64)
            except (TypeError, ValueError, OverflowError) as exc:
                raise InvalidInputError(f"bad inline points: {exc}") from exc
        if "config" in kwargs:
            cfg = kwargs["config"]
            if not isinstance(cfg, dict):
                raise InvalidInputError("config must be a JSON object")
            cfg_known = {f.name for f in fields(SingleTreeConfig)}
            cfg_unknown = set(cfg) - cfg_known
            if cfg_unknown:
                raise InvalidInputError(
                    f"unknown config fields: {', '.join(sorted(cfg_unknown))}")
            kwargs["config"] = SingleTreeConfig(**cfg)
        try:
            spec = cls(**kwargs)
        except TypeError as exc:
            raise InvalidInputError(f"bad job spec: {exc}") from exc
        spec.validate()
        return spec


#: Payload keys excluded from the canonical form: wall-clock ``phases``
#: vary run to run, and ``counters`` / ``rounds`` describe *how* a result
#: was computed (visit counts, divergence traces) — the wavefront and
#: reference traversal engines produce identical answers with different
#: work profiles, and the canonical bytes must certify the answer.
_NON_CANONICAL_KEYS = frozenset({"phases", "counters", "rounds"})


def _strip_noncanonical(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {k: _strip_noncanonical(v) for k, v in obj.items()
                if k not in _NON_CANONICAL_KEYS}
    return obj


def canonical_payload_bytes(payload: Dict[str, Any]) -> bytes:
    """Deterministic byte serialization of a result payload's *answer*.

    Drops the wall-clock ``phases`` dicts plus the ``counters`` /
    ``rounds`` work accounting, keeping the algorithmic output — edges,
    weights, labels, iteration count — which is a pure function of the
    spec, identical across execution backends, traversal engines and
    cache temperature.  Dumps sorted-key compact JSON; the
    backend-equivalence tests, the engine-equivalence property tests and
    the CI smoke checks all assert on exactly these bytes.
    """
    return json.dumps(_strip_noncanonical(payload), sort_keys=True,
                      separators=(",", ":")).encode()


def _rounds_to_dicts(rounds: List[RoundStats]) -> List[Dict[str, int]]:
    return [asdict(r) for r in rounds]


def _rounds_from_dicts(rows: List[Dict[str, int]]) -> List[RoundStats]:
    return [RoundStats(**row) for row in rows]


def emst_result_to_dict(result: EMSTResult) -> Dict[str, Any]:
    """Serialize an :class:`EMSTResult` to JSON-safe plain types."""
    return {
        "edges": result.edges.tolist(),
        "weights": result.weights.tolist(),
        "n_points": result.n_points,
        "dimension": result.dimension,
        "n_iterations": result.n_iterations,
        "total_weight": result.total_weight,
        "phases": dict(result.phases),
        "counters": {name: c.as_dict() for name, c in result.counters.items()},
        "rounds": _rounds_to_dicts(result.rounds),
    }


def emst_result_from_dict(data: Dict[str, Any]) -> EMSTResult:
    """Reconstruct an :class:`EMSTResult`; inverse of
    :func:`emst_result_to_dict` (``total_weight`` is derived, not stored)."""
    return EMSTResult(
        edges=np.asarray(data["edges"], dtype=np.int64).reshape(-1, 2),
        weights=np.asarray(data["weights"], dtype=np.float64),
        n_points=int(data["n_points"]),
        dimension=int(data["dimension"]),
        n_iterations=int(data["n_iterations"]),
        phases={k: float(v) for k, v in data["phases"].items()},
        counters={name: CostCounters(**vals)
                  for name, vals in data["counters"].items()},
        rounds=_rounds_from_dicts(data["rounds"]),
    )


def hdbscan_result_to_dict(result: HDBSCANResult) -> Dict[str, Any]:
    """Serialize an :class:`HDBSCANResult` (with its nested EMST)."""
    return {
        "labels": result.labels.tolist(),
        "probabilities": result.probabilities.tolist(),
        "n_clusters": result.n_clusters,
        "noise_fraction": result.noise_fraction,
        "emst": emst_result_to_dict(result.emst),
        "linkage": result.linkage.tolist(),
        "condensed": {
            "parent": result.condensed.parent.tolist(),
            "child": result.condensed.child.tolist(),
            "lambda_val": result.condensed.lambda_val.tolist(),
            "child_size": result.condensed.child_size.tolist(),
            "n_points": result.condensed.n_points,
        },
        "phases": dict(result.phases),
    }


def hdbscan_result_from_dict(data: Dict[str, Any]) -> HDBSCANResult:
    """Reconstruct an :class:`HDBSCANResult`; inverse of
    :func:`hdbscan_result_to_dict` (derived properties are not stored)."""
    cond = data["condensed"]
    return HDBSCANResult(
        labels=np.asarray(data["labels"], dtype=np.int64),
        probabilities=np.asarray(data["probabilities"], dtype=np.float64),
        emst=emst_result_from_dict(data["emst"]),
        linkage=np.asarray(data["linkage"], dtype=np.float64).reshape(-1, 4),
        condensed=CondensedTree(
            parent=np.asarray(cond["parent"], dtype=np.int64),
            child=np.asarray(cond["child"], dtype=np.int64),
            lambda_val=np.asarray(cond["lambda_val"], dtype=np.float64),
            child_size=np.asarray(cond["child_size"], dtype=np.int64),
            n_points=int(cond["n_points"]),
        ),
        phases={k: float(v) for k, v in data["phases"].items()},
    )


@dataclass
class JobResult:
    """Terminal outcome of one job, in transport-ready form.

    ``payload`` holds the serialized algorithm result (see the
    ``*_result_to_dict`` converters) for ``DONE`` jobs, ``error`` the failure
    message for ``FAILED`` ones.  The payload dict is shared with the
    engine's result cache — treat it as immutable and deserialize through
    :meth:`emst` / :meth:`hdbscan`, which build fresh arrays.  ``timings``
    includes the scheduler-observed ``queue`` and ``run`` seconds next to
    the algorithm's own phases; ``cache`` records which tiers answered
    (``result_hit`` / ``tree_hit`` / ``core_hit``, plus ``*_disk_hit``
    flags when the artifact came from the persistent store rather than
    memory).  ``mfeatures_per_sec`` is the *serving*
    rate over ``run`` seconds — a cache hit reports the (very high) rate at
    which it was answered, not compute throughput (the scheduler stats
    count only computed features).
    """

    job_id: str
    status: JobStatus
    algorithm: str
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    timings: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, bool] = field(default_factory=dict)
    mfeatures_per_sec: float = 0.0
    #: Span tree recorded by the observability layer (see
    #: :mod:`repro.obs.trace`), or ``None`` when tracing is off.  Lives
    #: on the result, never inside ``payload`` — like ``timings`` it
    #: describes *how* the job was served, so
    #: :func:`canonical_payload_bytes` is untouched by its presence.
    trace: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        out = {
            "job_id": self.job_id,
            "status": self.status.value,
            "algorithm": self.algorithm,
            "payload": self.payload,
            "error": self.error,
            "timings": dict(self.timings),
            "cache": dict(self.cache),
            "mfeatures_per_sec": self.mfeatures_per_sec,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        return cls(
            job_id=data["job_id"],
            status=JobStatus(data["status"]),
            algorithm=data["algorithm"],
            payload=data.get("payload"),
            error=data.get("error"),
            timings={k: float(v)
                     for k, v in data.get("timings", {}).items()},
            cache={k: bool(v) for k, v in data.get("cache", {}).items()},
            mfeatures_per_sec=float(data.get("mfeatures_per_sec", 0.0)),
            trace=data.get("trace"),
        )

    def emst(self) -> EMSTResult:
        """Deserialize the payload of an ``emst`` / ``mrd_emst`` job."""
        if self.payload is None or self.algorithm not in ("emst", "mrd_emst"):
            raise InvalidInputError(
                f"job {self.job_id} carries no EMST payload")
        return emst_result_from_dict(self.payload)

    def hdbscan(self) -> HDBSCANResult:
        """Deserialize the payload of an ``hdbscan`` job."""
        if self.payload is None or self.algorithm != "hdbscan":
            raise InvalidInputError(
                f"job {self.job_id} carries no HDBSCAN payload")
        return hdbscan_result_from_dict(self.payload)
