"""Batching job scheduler over a :mod:`concurrent.futures` worker pool.

Submitted jobs queue under a priority order (higher first, FIFO within a
priority).  A collector thread gathers queued jobs into *batches* — closed
when either ``max_batch`` jobs have accumulated or ``batch_window`` seconds
have passed since the batch opened — and releases each batch to the worker
pool in priority order.  Batching amortizes dispatch overhead across small
jobs, the serving
analogue of the paper's RoadNetwork3D observation that small problems are
"too small to saturate" a device (the same launch-overhead effect
:mod:`repro.kokkos.devices` models with per-kernel launch costs).

The scheduler is algorithm-agnostic: it runs an arbitrary ``runner``
callable per job and accounts wall time and features processed, reporting
throughput in MFeatures/s (via :func:`repro.metrics.mfeatures_per_second`)
so service numbers sit on the same axis as the figure benchmarks.

Execution backends
------------------
Orchestration (batching, bookkeeping, futures) always runs on a thread
pool.  With ``backend="process"`` the scheduler additionally owns a
``ProcessPoolExecutor`` of the same width, exposed as :attr:`compute_pool`;
the runner dispatches its CPU-bound phase there (see
:func:`repro.service.executor.execute_spec`) and the worker thread merely
blocks on the process future — releasing the GIL, so concurrent jobs use
real cores instead of serializing on one.  ``backend="thread"`` keeps
``compute_pool`` as ``None`` and the runner computes in-process.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServiceError
from repro.metrics import jobs_per_second, mfeatures_per_second
from repro.obs import MetricsRegistry

#: Execution backends a scheduler (and the engine above it) can run.
BACKENDS = ("thread", "process")


def _process_context() -> multiprocessing.context.BaseContext:
    """The safest available multiprocessing start method.

    Plain ``fork`` is unsafe here: the engine always has live threads (the
    collector, HTTP handlers) whose locks would be cloned mid-flight, and
    CPython 3.12+ deprecates forking a multi-threaded process.
    ``forkserver`` (Linux) forks workers from a clean single-threaded
    helper; elsewhere ``spawn`` starts fresh interpreters.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn")


@dataclass
class JobTicket:
    """Scheduler-side view of one submitted job.

    ``payload`` is opaque to the scheduler (the engine stores the job spec
    there).  The runner should set ``features`` (``n_points * dimension``)
    once known, feeding the throughput accounting.  Timestamps are
    ``time.perf_counter`` readings.
    """

    job_id: str
    payload: Any
    priority: int = 0
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    batch_size: int = 0
    features: int = 0
    #: Set by the runner when the job ended in a failure it absorbed (the
    #: engine returns FAILED results instead of raising), so the
    #: scheduler's failure counter covers both absorbed and raised errors.
    failed: bool = False

    @property
    def queue_seconds(self) -> float:
        """Seconds spent waiting before a worker picked the job up."""
        if self.started_at is None:
            return time.perf_counter() - self.enqueued_at
        return self.started_at - self.enqueued_at

    @property
    def run_seconds(self) -> float:
        """Seconds the runner spent on the job (0.0 until started)."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None \
            else time.perf_counter()
        return end - self.started_at


class BatchScheduler:
    """Collects queued jobs into batches and runs them on a worker pool.

    ``runner(ticket)`` executes one job and returns its result (delivered
    through ``ticket.future``); an exception from the runner fails only that
    job's future.  ``max_batch=1`` or ``batch_window=0.0`` degrade to plain
    per-job dispatch.
    """

    def __init__(self, runner: Callable[[JobTicket], Any], *,
                 max_workers: int = 2, max_batch: int = 8,
                 batch_window: float = 0.002,
                 backend: str = "thread",
                 registry: Optional[MetricsRegistry] = None) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        self._runner = runner
        self.max_workers = max_workers
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.backend = backend
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-worker")
        #: ``ProcessPoolExecutor`` the runner dispatches compute to under the
        #: process backend; ``None`` under the thread backend.
        self.compute_pool: Optional[ProcessPoolExecutor] = None
        if backend == "process":
            self.compute_pool = ProcessPoolExecutor(
                max_workers=max_workers, mp_context=_process_context())
        self._heap: List[Any] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._shutdown = False
        # Accounting lives in the metrics registry: `stats()` reads the
        # same instruments `/v1/metrics` scrapes, so the two surfaces can
        # never disagree.  The registry is shared with the engine when the
        # engine constructs the scheduler.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._jobs_submitted_c = self.registry.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted by the batch scheduler.")
        self._jobs_completed_c = self.registry.counter(
            "repro_jobs_completed_total",
            "Jobs whose runner finished (success or failure).")
        self._jobs_failed_c = self.registry.counter(
            "repro_jobs_failed_total",
            "Jobs that ended in failure (raised or absorbed).")
        self._batches_c = self.registry.counter(
            "repro_batches_total", "Batches dispatched to the worker pool.")
        self._features_done_c = self.registry.counter(
            "repro_features_done_total",
            "Features (n_points * dimension) of successfully computed jobs.")
        self._busy_seconds_c = self.registry.counter(
            "repro_busy_seconds_total",
            "Worker-busy seconds accumulated by job runners.")
        self._queue_wait_h = self.registry.histogram(
            "repro_queue_wait_seconds",
            "Seconds a job waited in the queue before a worker took it.")
        self._batch_build_h = self.registry.histogram(
            "repro_batch_build_seconds",
            "Seconds spent collecting each batch (bounded by batch_window).")
        self.registry.gauge(
            "repro_queue_depth", "Jobs currently waiting in the queue.",
            fn=lambda: len(self._heap))
        # Remaining non-exposed accounting (guarded by _cond's lock).
        self._largest_batch = 0
        self._first_enqueue: Optional[float] = None
        self._last_finish: Optional[float] = None
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-batcher", daemon=True)
        self._collector.start()

    def replace_broken_compute_pool(
            self, broken: ProcessPoolExecutor) -> None:
        """Swap in a fresh process pool after ``broken`` lost a worker.

        A crashed worker (OOM kill, segfault) marks the whole
        ``ProcessPoolExecutor`` broken forever; without replacement every
        later job on a long-running server would fail instantly.  The
        identity check makes concurrent calls idempotent: only the first
        observer of a given broken pool replaces it.
        """
        with self._cond:
            if self._shutdown or self.compute_pool is not broken:
                return
            self.compute_pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=_process_context())
        broken.shutdown(wait=False)

    def submit(self, job_id: str, payload: Any, *,
               priority: int = 0) -> JobTicket:
        """Queue one job; returns its ticket (result on ``ticket.future``)."""
        ticket = JobTicket(job_id=job_id, payload=payload, priority=priority,
                           enqueued_at=time.perf_counter())
        with self._cond:
            if self._shutdown:
                # A clean lifecycle error, never whatever the executor
                # machinery below would surface for a post-shutdown submit.
                raise ServiceError("scheduler is shut down")
            heapq.heappush(self._heap,
                           (-priority, next(self._seq), ticket))
            if self._first_enqueue is None:
                self._first_enqueue = ticket.enqueued_at
            self._cond.notify_all()
        self._jobs_submitted_c.inc()
        return ticket

    def _collect_loop(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._shutdown:
                    self._cond.wait()
                if not self._heap and self._shutdown:
                    return
                # A batch opens with the first available job and closes when
                # full or when the window since opening expires.
                deadline = time.perf_counter() + self.batch_window
                while (len(self._heap) < self.max_batch
                       and not self._shutdown):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = [heapq.heappop(self._heap)[2]
                         for _ in range(min(self.max_batch,
                                            len(self._heap)))]
                self._largest_batch = max(self._largest_batch, len(batch))
            self._batches_c.inc()
            self._batch_build_h.observe(max(
                0.0, time.perf_counter() - (deadline - self.batch_window)))
            # A batch is the scheduling quantum: its jobs enter the pool
            # together, in priority order.  Each job is its own pool task so
            # a batch still spreads across idle workers.
            for ticket in batch:
                ticket.batch_size = len(batch)
                try:
                    self._executor.submit(self._run_one, ticket)
                except RuntimeError as exc:
                    # shutdown(wait=False) stopped the executor under us;
                    # resolve the future so no client blocks forever.
                    ticket.future.set_exception(ServiceError(
                        f"scheduler shut down before job "
                        f"{ticket.job_id} ran: {exc}"))

    def _run_one(self, ticket: JobTicket) -> None:
        ticket.started_at = time.perf_counter()
        self._queue_wait_h.observe(ticket.queue_seconds)
        try:
            result = self._runner(ticket)
        except BaseException as exc:  # noqa: BLE001 — forwarded to future
            ticket.finished_at = time.perf_counter()
            self._account(ticket, failed=True)
            ticket.future.set_exception(exc)
        else:
            ticket.finished_at = time.perf_counter()
            self._account(ticket, failed=False)
            ticket.future.set_result(result)

    def _account(self, ticket: JobTicket, *, failed: bool) -> None:
        self._jobs_completed_c.inc()
        if failed or ticket.failed:
            self._jobs_failed_c.inc()
        else:
            # Failed jobs keep their busy time but contribute no
            # features: throughput counts only completed compute.
            self._features_done_c.inc(ticket.features)
        self._busy_seconds_c.inc(ticket.run_seconds)
        with self._cond:
            self._last_finish = ticket.finished_at

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and stop the workers.

        ``wait=True`` drains queued jobs first; ``wait=False`` returns
        immediately and still-queued jobs fail their futures with
        ``RuntimeError`` instead of running.
        """
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        if wait:
            self._collector.join()
        self._executor.shutdown(wait=wait)
        if self.compute_pool is not None:
            self.compute_pool.shutdown(wait=wait)

    def stats(self) -> Dict[str, Any]:
        """Queue depth, batch shape and throughput counters, JSON-safe.

        ``mfeatures_per_sec`` prices completed work against worker-busy
        seconds (compute throughput); ``jobs_per_sec`` against the wall-clock
        span from first enqueue to last finish (service throughput).
        """
        jobs_submitted = int(self._jobs_submitted_c.value())
        jobs_completed = int(self._jobs_completed_c.value())
        jobs_failed = int(self._jobs_failed_c.value())
        batches = int(self._batches_c.value())
        features_done = int(self._features_done_c.value())
        busy_seconds = self._busy_seconds_c.value()
        with self._cond:
            span = None
            if self._first_enqueue is not None \
                    and self._last_finish is not None:
                span = self._last_finish - self._first_enqueue
            queue_depth = len(self._heap)
            largest_batch = self._largest_batch
        return {
            "queue_depth": queue_depth,
            "backend": self.backend,
            "max_workers": self.max_workers,
            "max_batch": self.max_batch,
            "batch_window_seconds": self.batch_window,
            "jobs_submitted": jobs_submitted,
            "jobs_completed": jobs_completed,
            "jobs_failed": jobs_failed,
            "batches_dispatched": batches,
            "largest_batch": largest_batch,
            "mean_batch_size": (jobs_completed / batches
                                if batches else 0.0),
            "busy_seconds": busy_seconds,
            "features_done": features_done,
            "mfeatures_per_sec": (
                mfeatures_per_second(features_done, 1, busy_seconds)
                if busy_seconds > 0 and features_done else 0.0),
            "jobs_per_sec": (
                jobs_per_second(jobs_completed, span)
                if span and span > 0 and jobs_completed else 0.0),
        }
