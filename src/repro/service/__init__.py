"""Batch-serving engine for the single-tree EMST algorithms.

Turns the one-shot library into a servable system: jobs (EMST, m.r.d. EMST,
HDBSCAN*) queue into a batching scheduler over a worker pool; three
content-addressed cache tiers amortize tree construction (``T_tree``),
core-distance computation (``T_core``) and answer exact repeats instantly —
optionally persisted to disk (:mod:`repro.store`) so a restarted server
stays warm; and a stdlib JSON-over-HTTP API exposes the whole thing
(``python -m repro serve``).

Layers
------
``repro.service.jobs``       job specs, statuses and serializable results
``repro.service.cache``      content-addressed cache tiers (re-exported
                             from :mod:`repro.store`, which adds the
                             persistent disk level and warm restart)
``repro.service.scheduler``  size/deadline-triggered batching over workers
                             (thread or process execution backend)
``repro.service.executor``   the pure, picklable per-job execution path
``repro.service.engine``     the embeddable façade (submit/result/stats)
``repro.service.server``     the HTTP front end (no extra dependencies)

Example
-------
>>> import numpy as np
>>> from repro.service import Engine, JobSpec
>>> points = np.random.default_rng(0).random((500, 2))
>>> with Engine(max_workers=1) as engine:
...     job_id = engine.submit(JobSpec(points=points))
...     result = engine.result(job_id)
>>> result.status.value
'done'
>>> result.emst().edges.shape
(499, 2)
"""

from repro.service.cache import (
    ContentCache,
    TieredCache,
    estimate_nbytes,
    fingerprint,
)
from repro.service.engine import Engine
from repro.service.executor import execute_spec
from repro.service.jobs import (
    ALGORITHMS,
    JobResult,
    JobSpec,
    JobStatus,
    canonical_payload_bytes,
    emst_result_from_dict,
    emst_result_to_dict,
    hdbscan_result_from_dict,
    hdbscan_result_to_dict,
)
from repro.service.scheduler import BACKENDS, BatchScheduler, JobTicket
from repro.service.server import create_server, serve

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "BatchScheduler",
    "ContentCache",
    "Engine",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "JobTicket",
    "TieredCache",
    "canonical_payload_bytes",
    "create_server",
    "emst_result_from_dict",
    "emst_result_to_dict",
    "estimate_nbytes",
    "execute_spec",
    "fingerprint",
    "hdbscan_result_from_dict",
    "hdbscan_result_to_dict",
    "serve",
]
