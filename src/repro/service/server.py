"""JSON-over-HTTP front end for the serving engine (stdlib only).

Endpoints (all JSON):

``POST /v1/jobs``
    Body is a :meth:`~repro.service.jobs.JobSpec.to_dict` object.  Returns
    ``202 {"job_id": ..., "status": "pending"}``; malformed specs get 400,
    a closed engine 503.
``GET /v1/jobs/<id>[?wait=SECONDS]``
    The job's :class:`~repro.service.jobs.JobResult` once finished, else
    ``{"job_id": ..., "status": "pending" | "running"}``.  ``wait`` blocks
    up to that many seconds for completion (long-poll).
``GET /v1/stats``
    :meth:`Engine.stats` — scheduler throughput plus per-tier cache hit
    rates, memory and disk (tree / result / core-distance tiers and the
    persistent store's occupancy, when one is configured).
``GET /v1/healthz``
    Liveness probe (reports the backend and whether a store is attached).
``POST /v1/admin/flush``
    Drop every cached artifact, memory and disk; returns the drop counts.
    No request body required.

Built on :class:`http.server.ThreadingHTTPServer`; request threads only
ever block on an engine future, the compute happens on the engine's worker
pool.  No dependencies outside the standard library.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

import repro
from repro.errors import InvalidInputError, ServiceError
from repro.service.engine import Engine
from repro.service.jobs import JobSpec

#: Largest accepted request body (an inline 1M-point 3D job is ~60 MB of
#: JSON; anything bigger should arrive as a dataset spec).
MAX_BODY_BYTES = 256 << 20


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API onto the server's :class:`Engine`."""

    server_version = f"repro-service/{repro.__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that sends less body than Content-Length
    #: (or stalls mid-request) frees its handler thread instead of
    #: blocking it forever.
    timeout = 60

    @property
    def engine(self) -> Engine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, code: int, obj: Any) -> None:
        body = json.dumps(obj).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "healthz"]:
            self._send_json(200, {"status": "ok",
                                  "version": repro.__version__,
                                  "backend": self.engine.backend,
                                  "persistent": self.engine.store
                                  is not None})
        elif parts == ["v1", "stats"]:
            self._send_json(200, self.engine.stats())
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2], url.query)
        else:
            self._send_error_json(404, f"no such endpoint: {url.path}")

    def _get_job(self, job_id: str, query: str) -> None:
        wait = 0.0
        params = parse_qs(query)
        if "wait" in params:
            try:
                wait = min(float(params["wait"][0]), 60.0)
            except ValueError:
                self._send_error_json(400, "wait must be a number")
                return
        try:
            if wait > 0:
                try:
                    result = self.engine.result(job_id, timeout=wait)
                except FutureTimeoutError:
                    result = None
            else:
                result = self.engine.poll(job_id)
            if result is None:
                # Status is only consulted with no result in hand (the
                # record may be retention-evicted once the result is out).
                status = self.engine.status(job_id)
                if status.finished:
                    # Finished between the wait/poll and the status read; a
                    # terminal status must carry its result.
                    result = self.engine.poll(job_id)
        except InvalidInputError as exc:
            self._send_error_json(404, str(exc))
            return
        if result is None:
            self._send_json(200, {"job_id": job_id, "status": status.value})
        else:
            self._send_json(200, result.to_dict())

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "admin", "flush"]:
            self._post_flush()
            return
        if parts != ["v1", "jobs"]:
            # Replying without consuming the body would leave its bytes to
            # be parsed as the next request on this keep-alive connection.
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(400, "missing or oversized request body")
            return
        try:
            data = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return
        try:
            spec = JobSpec.from_dict(data)
            job_id = self.engine.submit(spec)
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        except ServiceError as exc:
            # The spec was fine; the engine is shutting down — a service
            # availability condition, not a client error.
            self._send_error_json(503, str(exc))
            return
        self._send_json(202, {"job_id": job_id, "status": "pending"})

    def _post_flush(self) -> None:
        """``POST /v1/admin/flush`` — empty the cache tiers and the store.

        Any body is ignored, but a well-formed one is consumed so the
        keep-alive connection stays in sync; a malformed or oversized
        Content-Length closes the connection instead (the unread bytes
        would otherwise be parsed as the next request).
        """
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
        elif length:
            self.rfile.read(length)
        self._send_json(200, {"status": "ok",
                              "flushed": self.engine.flush()})


def create_server(engine: Engine, host: str = "127.0.0.1", port: int = 0,
                  *, verbose: bool = False) -> ThreadingHTTPServer:
    """Bind a service HTTP server (``port=0`` picks a free port).

    The caller owns the lifecycle: run ``serve_forever()`` (typically on a
    thread), later ``shutdown()`` + ``server_close()``, and close the engine.
    """
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.engine = engine  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def run_server(server: ThreadingHTTPServer, engine: Engine) -> None:
    """Run a bound server until interrupted, then drain the engine."""
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.service listening on http://{bound_host}:{bound_port} "
          f"[{engine.backend} backend, "
          f"{engine.scheduler.max_workers} workers] "
          f"(POST /v1/jobs, GET /v1/jobs/<id>, /v1/stats, /v1/healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        engine.close()


def serve(engine: Engine, host: str = "127.0.0.1", port: int = 8321,
          *, verbose: bool = False) -> None:
    """Bind and run the API until interrupted, then drain the engine."""
    try:
        server = create_server(engine, host, port, verbose=verbose)
    except OSError:
        engine.close()  # bind failed; don't leak the worker pool
        raise
    run_server(server, engine)
