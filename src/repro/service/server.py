"""JSON-over-HTTP front end for the serving engine (stdlib only).

Endpoints (all JSON):

``POST /v1/jobs``
    Body is a :meth:`~repro.service.jobs.JobSpec.to_dict` object.  Returns
    ``202 {"job_id": ..., "status": "pending"}``; malformed specs get 400,
    a closed engine 503.
``GET /v1/jobs/<id>[?wait_s=SECONDS]``
    The job's :class:`~repro.service.jobs.JobResult` once finished, else
    ``{"job_id": ..., "status": "pending" | "running"}``.  ``wait_s``
    blocks up to that many seconds (bounded, default 0) for completion
    (long-poll) — implemented on the engine future's timeout, so a
    waiting handler thread costs no polling.  ``wait`` is an accepted
    alias (the original spelling).
``GET /v1/stats``
    :meth:`Engine.stats` — scheduler throughput plus per-tier cache hit
    rates, memory and disk (tree / result / core-distance tiers and the
    persistent store's occupancy, when one is configured).
``GET /v1/healthz``
    Liveness probe (reports the node name, the backend and whether a
    store is attached).
``GET /v1/metrics``
    Prometheus text exposition of the engine's metrics registry —
    latency histograms (job, queue-wait, per-phase, store I/O, HTTP),
    cache lookup counters and occupancy gauges; ``?format=json`` returns
    the JSON document form (what ``repro top`` and the router's fleet
    scrape consume).
``POST /v1/admin/flush``
    Drop cached artifacts, memory and disk; returns entries and bytes
    reclaimed.  An optional JSON body ``{"tier": "bvh"|"core"|"result"}``
    restricts the flush to one tier (``bvh`` is the wire name of the tree
    tier); no body (or an empty object) keeps the flush-everything
    behavior.
``POST /v1/admin/compact``
    Force a journal compaction of the persistent store; returns the
    journal lines/bytes reclaimed, or ``{"compacted": null}`` on a
    memory-only node.  No request body required.

Every response carries an ``X-Repro-Node`` header naming the serving node
(``--name``, defaulting to ``host:port``), so a client behind the cluster
router (:mod:`repro.cluster`) can observe which node answered — the
router forwards the header untouched.

Built on :class:`http.server.ThreadingHTTPServer`; request threads only
ever block on an engine future, the compute happens on the engine's worker
pool.  No dependencies outside the standard library.
"""

from __future__ import annotations

import json
import sys
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlparse

import repro
from repro.errors import InvalidInputError, ServiceError
from repro.obs import TRACE_HEADER, EventLog, from_header
from repro.service.engine import Engine
from repro.service.jobs import JobSpec

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest accepted request body (an inline 1M-point 3D job is ~60 MB of
#: JSON; anything bigger should arrive as a dataset spec).
MAX_BODY_BYTES = 256 << 20

#: Cap on a single ``GET /v1/jobs/<id>`` long-poll; clients needing longer
#: re-poll in chunks (see ``repro submit``).
MAX_WAIT_SECONDS = 60.0


def parse_wait_param(query: str) -> float:
    """Long-poll seconds from a job-endpoint query string.

    ``wait_s`` is the canonical spelling, ``wait`` the original one; the
    explicit suffix wins when both are (oddly) supplied.  Bounded by
    :data:`MAX_WAIT_SECONDS`, default 0.  Shared by the node and router
    front ends so the wire contract cannot silently diverge.  Raises
    :class:`InvalidInputError` on a non-numeric value.
    """
    wait = 0.0
    params = parse_qs(query)
    for name in ("wait", "wait_s"):
        if name in params:
            try:
                wait = min(float(params[name][0]), MAX_WAIT_SECONDS)
            except ValueError:
                raise InvalidInputError(f"{name} must be a number")
    return wait


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API onto the server's :class:`Engine`."""

    server_version = f"repro-service/{repro.__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that sends less body than Content-Length
    #: (or stalls mid-request) frees its handler thread instead of
    #: blocking it forever.
    timeout = 60

    @property
    def engine(self) -> Engine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        """Access logging via the structured event log (sampled).

        The previous implementation silently discarded every request log
        unless ``verbose`` was set; now each request emits a JSONL event —
        to stderr when verbose, and always into the log's in-memory ring —
        with the sampling knob (``--access-log-sample``) bounding the
        volume on busy nodes.
        """
        events = getattr(self.server, "events", None)
        if events is None:
            return
        try:
            status = int(code)
        except (TypeError, ValueError):
            status = str(code)
        events.emit("http_access", method=self.command, path=self.path,
                    code=status, client=self.address_string())

    def log_message(self, format: str, *args: Any) -> None:
        """Non-access messages (errors, warnings) — never sampled away
        silently to stdout-suppression; they land in the event ring too."""
        events = getattr(self.server, "events", None)
        if events is None:
            if getattr(self.server, "verbose", False):
                super().log_message(format, *args)
            return
        events.emit("http_message", message=format % args,
                    client=self.address_string())

    def _instrumented_endpoint(self, path: str) -> str:
        """The path normalized for metric labels (bounded cardinality)."""
        parts = [p for p in path.split("/") if p]
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            return "/v1/jobs/{id}"
        return "/" + "/".join(parts) if parts else "/"

    def _begin_request(self, path: str) -> None:
        self._obs_started: Optional[float] = time.perf_counter()
        self._obs_endpoint = self._instrumented_endpoint(path)

    def _finish_request(self, code: int) -> None:
        started = getattr(self, "_obs_started", None)
        if started is None:
            return
        self._obs_started = None
        latency_h = getattr(self.server, "http_latency", None)
        if latency_h is not None:
            latency_h.observe(time.perf_counter() - started,
                              endpoint=self._obs_endpoint)
            self.server.http_requests.inc(  # type: ignore[attr-defined]
                endpoint=self._obs_endpoint, code=str(code))

    def _send_body(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        node_name = getattr(self.server, "node_name", None)
        if node_name:
            self.send_header("X-Repro-Node", node_name)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self._finish_request(code)

    def _send_json(self, code: int, obj: Any) -> None:
        self._send_body(code, json.dumps(obj).encode(), "application/json")

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        self._begin_request(url.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "healthz"]:
            self._send_json(200, {"status": "ok",
                                  "version": repro.__version__,
                                  "node": getattr(self.server, "node_name",
                                                  None),
                                  "backend": self.engine.backend,
                                  "persistent": self.engine.store
                                  is not None})
        elif parts == ["v1", "stats"]:
            self._send_json(200, self.engine.stats())
        elif parts == ["v1", "metrics"]:
            self._get_metrics(url.query)
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2], url.query)
        else:
            self._send_error_json(404, f"no such endpoint: {url.path}")

    def _get_metrics(self, query: str) -> None:
        """``GET /v1/metrics`` — Prometheus text, or JSON with
        ``?format=json`` (the form ``repro top`` and the router's fleet
        scrape consume)."""
        fmt = parse_qs(query).get("format", ["prometheus"])[0]
        if fmt == "json":
            self._send_json(200, self.engine.registry.as_dict())
        elif fmt == "prometheus":
            self._send_body(200,
                            self.engine.registry.render_prometheus().encode(),
                            PROMETHEUS_CONTENT_TYPE)
        else:
            self._send_error_json(
                400, f"unknown metrics format {fmt!r}; "
                     f"use 'prometheus' or 'json'")

    def _get_job(self, job_id: str, query: str) -> None:
        try:
            wait = parse_wait_param(query)
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        try:
            if wait > 0:
                try:
                    result = self.engine.result(job_id, timeout=wait)
                except FutureTimeoutError:
                    result = None
            else:
                result = self.engine.poll(job_id)
            if result is None:
                # Status is only consulted with no result in hand (the
                # record may be retention-evicted once the result is out).
                status = self.engine.status(job_id)
                if status.finished:
                    # Finished between the wait/poll and the status read; a
                    # terminal status must carry its result.
                    result = self.engine.poll(job_id)
        except InvalidInputError as exc:
            self._send_error_json(404, str(exc))
            return
        if result is None:
            self._send_json(200, {"job_id": job_id, "status": status.value})
        else:
            self._send_json(200, result.to_dict())

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        self._begin_request(url.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "admin", "flush"]:
            self._post_flush()
            return
        if parts == ["v1", "admin", "compact"]:
            self._post_compact()
            return
        if parts != ["v1", "jobs"]:
            # Replying without consuming the body would leave its bytes to
            # be parsed as the next request on this keep-alive connection.
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(400, "missing or oversized request body")
            return
        try:
            data = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return
        try:
            spec = JobSpec.from_dict(data)
            job_id = self.engine.submit(
                spec, trace=from_header(self.headers.get(TRACE_HEADER)))
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        except ServiceError as exc:
            # The spec was fine; the engine is shutting down — a service
            # availability condition, not a client error.
            self._send_error_json(503, str(exc))
            return
        self._send_json(202, {"job_id": job_id, "status": "pending"})

    def _read_admin_body(self) -> Optional[Dict[str, Any]]:
        """Consume and decode an optional admin-endpoint JSON body.

        Returns the decoded object (``{}`` for an empty body) or ``None``
        after replying 400 — admin bodies are tiny, but the bytes must be
        consumed either way so the keep-alive connection stays in sync; a
        malformed or oversized Content-Length closes the connection
        instead (the unread bytes would otherwise be parsed as the next
        request).
        """
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(400, "bad Content-Length")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw.strip():
            return {}
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return None
        if not isinstance(data, dict):
            self._send_error_json(400, "admin body must be a JSON object")
            return None
        return data

    def _post_flush(self) -> None:
        """``POST /v1/admin/flush`` — empty cache tiers, whole or by tier.

        An optional ``{"tier": "bvh"|"core"|"result"}`` body flushes just
        that tier (memory and its slice of the disk store); ``bvh`` is
        accepted as the wire name of the internal ``tree`` tier.
        """
        data = self._read_admin_body()
        if data is None:
            return
        tier = data.get("tier")
        if tier is not None:
            # The BVH tier is "tree" internally (it once held kd-trees
            # too); the wire name matches what operators see in the docs.
            tier = {"bvh": "tree"}.get(tier, tier)
        try:
            flushed = self.engine.flush(tier=tier)
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(200, {"status": "ok", "tier": tier,
                              "flushed": flushed})

    def _post_compact(self) -> None:
        """``POST /v1/admin/compact`` — force a store journal compaction."""
        if self._read_admin_body() is None:
            return
        self._send_json(200, {"status": "ok",
                              "compacted": self.engine.compact()})


def create_server(engine: Engine, host: str = "127.0.0.1", port: int = 0,
                  *, verbose: bool = False,
                  node_name: Optional[str] = None,
                  access_log_sample: float = 1.0) -> ThreadingHTTPServer:
    """Bind a service HTTP server (``port=0`` picks a free port).

    ``node_name`` is the identity reported in the ``X-Repro-Node`` header
    and ``/v1/healthz`` (default: the bound ``host:port``) — what a
    cluster router shows clients as the serving node.

    ``access_log_sample`` keeps that fraction of access-log events
    (deterministically — every ``1/sample``-th request); ``verbose``
    additionally writes the kept events to stderr as JSONL.

    The caller owns the lifecycle: run ``serve_forever()`` (typically on a
    thread), later ``shutdown()`` + ``server_close()``, and close the engine.
    """
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.engine = engine  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    bound_host, bound_port = server.server_address[:2]
    server.node_name = (  # type: ignore[attr-defined]
        node_name if node_name else f"{bound_host}:{bound_port}")
    engine.node_name = server.node_name  # names this engine's trace spans
    server.events = EventLog(  # type: ignore[attr-defined]
        stream=sys.stderr if verbose else None, sample=access_log_sample)
    server.http_latency = engine.registry.histogram(  # type: ignore
        "repro_http_request_seconds",
        "HTTP handler latency by (normalized) endpoint.",
        labels=("endpoint",))
    server.http_requests = engine.registry.counter(  # type: ignore
        "repro_http_requests_total",
        "HTTP requests served, by endpoint and status code.",
        labels=("endpoint", "code"))
    server.daemon_threads = True
    return server


def run_server(server: ThreadingHTTPServer, engine: Engine) -> None:
    """Run a bound server until interrupted, then drain the engine."""
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.service listening on http://{bound_host}:{bound_port} "
          f"[node {getattr(server, 'node_name', '?')}, "
          f"{engine.backend} backend, "
          f"{engine.scheduler.max_workers} workers] "
          f"(POST /v1/jobs, GET /v1/jobs/<id>, /v1/stats, /v1/healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        engine.close()


def serve(engine: Engine, host: str = "127.0.0.1", port: int = 8321,
          *, verbose: bool = False,
          node_name: Optional[str] = None,
          access_log_sample: float = 1.0) -> None:
    """Bind and run the API until interrupted, then drain the engine."""
    try:
        server = create_server(engine, host, port, verbose=verbose,
                               node_name=node_name,
                               access_log_sample=access_log_sample)
    except OSError:
        engine.close()  # bind failed; don't leak the worker pool
        raise
    run_server(server, engine)
