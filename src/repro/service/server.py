"""JSON-over-HTTP front end for the serving engine (stdlib only).

Endpoints (all JSON):

``POST /v1/jobs``
    Body is a :meth:`~repro.service.jobs.JobSpec.to_dict` object.  Returns
    ``202 {"job_id": ..., "status": "pending"}``; malformed specs get 400,
    a closed engine 503, a full admission queue 429 + ``Retry-After``.
``GET /v1/jobs/<id>[?wait_s=SECONDS]``
    The job's :class:`~repro.service.jobs.JobResult` once finished, else
    ``{"job_id": ..., "status": "pending" | "running"}``.  ``wait_s``
    blocks up to that many seconds (bounded, default 0) for completion
    (long-poll) — bridged onto the engine future with
    :func:`asyncio.wrap_future`, so a waiting client costs an asyncio
    task, not a thread.  ``wait`` is an accepted alias (the original
    spelling).
``GET /v1/stats``
    :meth:`Engine.stats` — scheduler throughput plus per-tier cache hit
    rates, memory and disk (tree / result / core-distance tiers and the
    persistent store's occupancy, when one is configured).
``GET /v1/healthz``
    Liveness probe (reports the node name, the backend and whether a
    store is attached).  Exempt from admission shedding.
``GET /v1/metrics``
    Prometheus text exposition of the engine's metrics registry —
    latency histograms (job, queue-wait, per-phase, store I/O, HTTP),
    cache lookup counters and occupancy gauges; ``?format=json`` returns
    the JSON document form (what ``repro top`` and the router's fleet
    scrape consume).  Exempt from admission shedding.
``POST /v1/admin/flush``
    Drop cached artifacts, memory and disk; returns entries and bytes
    reclaimed.  An optional JSON body ``{"tier": "bvh"|"core"|"result"}``
    restricts the flush to one tier (``bvh`` is the wire name of the tree
    tier); no body (or an empty object) keeps the flush-everything
    behavior.
``POST /v1/admin/compact``
    Force a journal compaction of the persistent store; returns the
    journal lines/bytes reclaimed, or ``{"compacted": null}`` on a
    memory-only node.  No request body required.
``GET /v1/traces[?since=&min_duration_ms=&outcome=&algorithm=&limit=]``
    Archived trace records kept by the tail-sampling retention policy
    (failures, slow jobs, failover/lost traces, plus a deterministic
    sample of the fast majority), slowest first.
``GET /v1/traces/<trace_id>``
    One archived trace record; 404 ``unknown_trace`` if sampled out or
    evicted.
``GET /v1/admin/events[?limit=]``
    The newest entries of the in-memory structured-event ring — remote
    access to what ``--verbose`` writes to stderr.
``POST /v1/admin/dump``
    Flight-recorder snapshot: config, stats, metrics, SLO report,
    inflight jobs, queue depth and the event ring in one debug bundle.
``GET /v1/artifacts``
    The node's persistent-store catalogue (tier, key, nbytes per entry).
``GET /v1/artifacts/<tier>/<key>``
    One artifact's raw ``.npz`` blob bytes — the on-disk file verbatim,
    which is what replica warm-up, peer-fetch and ``repro rebalance``
    stream between nodes; 404 ``not_found`` when absent.
``POST /v1/artifacts/<tier>/<key>[?reason=replica|rebalance]``
    Ingest raw blob bytes into the node's store (validated by
    deserializing before the atomic rename; garbage is a 400).  Returns
    ``{"stored": bool, ...}`` — ``false`` on a memory-only node.

Every response carries an ``X-Repro-Node`` header naming the serving node
(``--name``, defaulting to ``host:port``), so a client behind the cluster
router (:mod:`repro.cluster`) can observe which node answered — the
router forwards the header untouched.  Every non-2xx body is the uniform
``{"error": {"code", "message", "retryable"}}`` envelope
(:mod:`repro.api.contract`).

Built on the shared asyncio host (:class:`repro.api.http.AsyncHTTPHost`):
this module is just the :class:`~repro.api.contract.WireAPI` backend
binding the contract onto an :class:`Engine`, plus admission control —
submissions beyond ``max_queue_depth`` unfinished jobs shed with a
retryable 429 instead of growing the backlog unboundedly.  No
dependencies outside the standard library.
"""

from __future__ import annotations

import asyncio
import sys
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, Optional, Tuple

import repro
from repro.api.contract import (  # noqa: F401 — re-exported wire constants
    ERR_NOT_FOUND,
    ERR_OVERLOADED,
    ERR_UNKNOWN_JOB,
    ERR_UNKNOWN_TRACE,
    ApiError,
    MAX_BODY_BYTES,
    MAX_WAIT_SECONDS,
    PROMETHEUS_CONTENT_TYPE,
    WireAPI,
    parse_wait_param,
)
from repro.api.http import AsyncHTTPHost, DEFAULT_MAX_INFLIGHT
from repro.errors import InvalidInputError
from repro.obs import TRACE_HEADER, EventLog, from_header
from repro.obs.profiler import PAUSE_BUCKETS
from repro.service.engine import Engine
from repro.service.jobs import JobSpec

#: Default bound on unfinished jobs before submissions shed with 429.
DEFAULT_MAX_QUEUE_DEPTH = 512


class EngineAPI(WireAPI):
    """The ``/v1`` contract bound to one :class:`Engine`.

    Engine calls are blocking (locks, futures, JSON-sized payloads), so
    each hops through ``asyncio.to_thread``; only the long-poll park
    itself stays on the loop, as a task on the wrapped engine future.
    """

    def __init__(self, engine: Engine, *,
                 node_name: Optional[str] = None,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH) -> None:
        self.engine = engine
        self.node_name = node_name
        self.max_queue_depth = max_queue_depth
        #: The HTTP host's structured-event ring; attached by
        #: ``create_server`` so ``GET /v1/admin/events`` can serve it.
        self.event_log: Optional[EventLog] = None

    async def healthz(self) -> Dict[str, Any]:
        return {"status": "ok",
                "version": repro.__version__,
                "node": self.node_name,
                "backend": self.engine.backend,
                "persistent": self.engine.store is not None}

    async def stats(self) -> Dict[str, Any]:
        return await asyncio.to_thread(self.engine.stats)

    async def metrics_json(self) -> Dict[str, Any]:
        return await asyncio.to_thread(self.engine.registry.as_dict)

    async def metrics_text(self) -> str:
        return await asyncio.to_thread(
            self.engine.registry.render_prometheus)

    async def submit(self, data: Dict[str, Any],
                     trace_header: Optional[str]
                     ) -> Tuple[Dict[str, Any], Optional[str]]:
        if self.engine.queue_depth() >= self.max_queue_depth:
            raise ApiError(
                429, f"admission queue full "
                     f"({self.max_queue_depth} jobs unfinished); "
                     f"retry shortly",
                code=ERR_OVERLOADED, retryable=True, retry_after=1)

        def _submit() -> str:
            spec = JobSpec.from_dict(data)
            return self.engine.submit(spec, trace=from_header(trace_header))

        job_id = await asyncio.to_thread(_submit)
        return {"job_id": job_id, "status": "pending"}, None

    async def job(self, job_id: str, wait: float
                  ) -> Tuple[Dict[str, Any], Optional[str]]:
        try:
            result = await asyncio.to_thread(self.engine.poll, job_id)
            if result is None and wait > 0:
                result = await self._wait_for_result(job_id, wait)
            if result is None:
                # Status is only consulted with no result in hand (the
                # record may be retention-evicted once the result is out).
                status = self.engine.status(job_id)
                if status.finished:
                    # Finished between the wait/poll and the status read;
                    # a terminal status must carry its result.
                    result = await asyncio.to_thread(
                        self.engine.poll, job_id)
        except InvalidInputError as exc:
            raise ApiError(404, str(exc), code=ERR_UNKNOWN_JOB)
        if result is None:
            return {"job_id": job_id, "status": status.value}, None
        return await asyncio.to_thread(result.to_dict), None

    async def _wait_for_result(self, job_id: str, wait: float):
        """Park on the engine future for up to ``wait`` seconds.

        The future is shielded: a long-poll timing out must not cancel
        the job.  JobResult futures never raise (failures are FAILED
        results), so abandoning one leaks no unretrieved exception.  The
        ticket is unset only for the sub-ms registration window inside
        ``Engine.submit``; spin past it asynchronously.
        """
        deadline = time.monotonic() + wait
        while True:
            future = self.engine.future(job_id)
            if future is not None:
                break
            if time.monotonic() >= deadline:
                return None
            await asyncio.sleep(0.0005)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        try:
            return await asyncio.wait_for(
                asyncio.shield(asyncio.wrap_future(future)), remaining)
        except (asyncio.TimeoutError, FutureTimeoutError):
            return None

    async def flush(self, data: Dict[str, Any]) -> Dict[str, Any]:
        tier = data.get("tier")
        if tier is not None:
            # The BVH tier is "tree" internally (it once held kd-trees
            # too); the wire name matches what operators see in the docs.
            tier = {"bvh": "tree"}.get(tier, tier)
        flushed = await asyncio.to_thread(self.engine.flush, tier)
        return {"status": "ok", "tier": tier, "flushed": flushed}

    async def compact(self) -> Dict[str, Any]:
        return {"status": "ok",
                "compacted": await asyncio.to_thread(self.engine.compact)}

    async def traces(self, query: Dict[str, Any]) -> Dict[str, Any]:
        return await asyncio.to_thread(self.engine.traces, query)

    async def trace(self, trace_id: str
                    ) -> Tuple[Dict[str, Any], Optional[str]]:
        record = await asyncio.to_thread(self.engine.trace, trace_id)
        if record is None:
            raise ApiError(404, f"unknown trace id {trace_id!r}",
                           code=ERR_UNKNOWN_TRACE)
        return record, None

    async def events(self, limit: Optional[int]) -> Dict[str, Any]:
        log = self.event_log
        if log is None:
            return {"events": [], "stats": None}
        return {"events": log.recent(limit), "stats": log.stats()}

    async def profile(self, seconds: Optional[float],
                      hz: Optional[float]) -> Dict[str, Any]:
        # A capture blocks for its whole window; to_thread keeps the
        # loop serving (metrics scrapes, health probes) meanwhile.
        return await asyncio.to_thread(self.engine.profile, seconds, hz)

    async def dump(self) -> Dict[str, Any]:
        bundle = await asyncio.to_thread(self.engine.dump)
        bundle["role"] = "node"
        bundle["node"] = self.node_name
        if self.event_log is not None:
            bundle["events"] = self.event_log.recent()
            bundle["events_stats"] = self.event_log.stats()
        return bundle

    async def artifact_list(self) -> Dict[str, Any]:
        entries = await asyncio.to_thread(self.engine.artifact_entries)
        return {"node": self.node_name, "artifacts": entries}

    async def artifact_get(self, tier: str, key: str
                           ) -> Tuple[bytes, Optional[str]]:
        data = await asyncio.to_thread(
            self.engine.artifact_bytes, tier, key)
        if data is None:
            raise ApiError(404, f"no {tier} artifact {key[:12]}… here",
                           code=ERR_NOT_FOUND)
        return data, None

    async def artifact_put(self, tier: str, key: str, data: bytes,
                           reason: str) -> Dict[str, Any]:
        stored = await asyncio.to_thread(
            self.engine.ingest_artifact, tier, key, data, reason)
        return {"stored": stored, "tier": tier, "key": key}


def create_server(engine: Engine, host: str = "127.0.0.1", port: int = 0,
                  *, verbose: bool = False,
                  node_name: Optional[str] = None,
                  access_log_sample: float = 1.0,
                  max_inflight: int = DEFAULT_MAX_INFLIGHT,
                  max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
                  ) -> AsyncHTTPHost:
    """Bind a service HTTP server (``port=0`` picks a free port).

    ``node_name`` is the identity reported in the ``X-Repro-Node`` header
    and ``/v1/healthz`` (default: the bound ``host:port``) — what a
    cluster router shows clients as the serving node.

    ``access_log_sample`` keeps that fraction of access-log events
    (deterministically — every ``1/sample``-th request); ``verbose``
    additionally writes the kept events to stderr as JSONL.

    ``max_inflight`` bounds concurrent in-handler requests,
    ``max_queue_depth`` bounds unfinished engine jobs; beyond either the
    server sheds with a retryable 429 envelope and ``Retry-After``.

    The caller owns the lifecycle: run ``serve_forever()`` (typically on a
    thread), later ``shutdown()`` + ``server_close()``, and close the engine.
    """
    api = EngineAPI(engine, max_queue_depth=max_queue_depth)
    server = AsyncHTTPHost(api, host, port, max_inflight=max_inflight)
    server.engine = engine  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    bound_host, bound_port = server.server_address[:2]
    server.node_name = (
        node_name if node_name else f"{bound_host}:{bound_port}")
    api.node_name = server.node_name
    engine.node_name = server.node_name  # names this engine's trace spans
    server.events = EventLog(
        stream=sys.stderr if verbose else None, sample=access_log_sample)
    api.event_log = server.events  # /v1/admin/events serves this ring
    server.http_latency = engine.registry.histogram(
        "repro_http_request_seconds",
        "HTTP handler latency by (normalized) endpoint.",
        labels=("endpoint",))
    server.http_requests = engine.registry.counter(
        "repro_http_requests_total",
        "HTTP requests served, by endpoint and status code.",
        labels=("endpoint", "code"))
    server.shed_total = engine.registry.counter(
        "repro_http_shed_total",
        "Requests shed by admission control (429), by endpoint.",
        labels=("endpoint",))
    engine.registry.gauge(
        "repro_http_inflight_requests",
        "Requests currently inside the HTTP handler.",
        fn=lambda: float(server.inflight))
    engine.registry.gauge(
        "repro_admission_queue_depth",
        "Unfinished jobs counted against the admission bound.",
        fn=lambda: float(engine.queue_depth()))
    server.loop_lag = engine.registry.histogram(
        "repro_event_loop_lag_seconds",
        "Asyncio event-loop scheduling lag measured by a periodic probe.",
        buckets=PAUSE_BUCKETS)
    return server


def run_server(server: AsyncHTTPHost, engine: Engine) -> None:
    """Run a bound server until interrupted, then drain the engine."""
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.service listening on http://{bound_host}:{bound_port} "
          f"[node {getattr(server, 'node_name', '?')}, "
          f"{engine.backend} backend, "
          f"{engine.scheduler.max_workers} workers] "
          f"(POST /v1/jobs, GET /v1/jobs/<id>, /v1/stats, /v1/healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        engine.close()


def serve(engine: Engine, host: str = "127.0.0.1", port: int = 8321,
          *, verbose: bool = False,
          node_name: Optional[str] = None,
          access_log_sample: float = 1.0,
          max_inflight: int = DEFAULT_MAX_INFLIGHT,
          max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH) -> None:
    """Bind and run the API until interrupted, then drain the engine."""
    try:
        server = create_server(engine, host, port, verbose=verbose,
                               node_name=node_name,
                               access_log_sample=access_log_sample,
                               max_inflight=max_inflight,
                               max_queue_depth=max_queue_depth)
    except OSError:
        engine.close()  # bind failed; don't leak the worker pool
        raise
    run_server(server, engine)
