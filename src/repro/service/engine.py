"""The serving façade: submit jobs, await results, read statistics.

:class:`Engine` wires the batching scheduler and three cache tiers around
the core algorithms.  Per job it:

1. resolves the point source (inline array or dataset spec),
2. consults the **result tier** — an exact repeat (same point bytes, same
   algorithm and configuration) is answered without any computation,
3. consults the **tree tier** — a known point set reuses its built
   :class:`~repro.bvh.bvh.BVH`, injected through the ``bvh=`` parameter of
   the core entry points so the ``tree`` phase is skipped,
4. for m.r.d./HDBSCAN jobs, consults the **core-distance tier** — keyed by
   ``(points, k_pts)`` only, so a repeat point set skips the batched k-NN
   (the paper's ``T_core``) even under a different tree configuration,
5. dispatches the compute to :func:`~repro.service.executor.execute_spec`
   — in-process under ``backend="thread"``, on a ``ProcessPoolExecutor``
   worker under ``backend="process"`` (escaping the GIL for CPU-bound
   batches) — and fills the caches from the outcome.

Both backends run the identical pure execution path, so a job's payload is
byte-for-byte the same whichever one served it.  All cache state lives in
the parent process: lookups happen before dispatch, insertions after
completion, and artifacts built by a process worker come back serialized
for the parent to cache and re-ship to later jobs over the same points.

With ``store_dir`` set, every tier is backed by a persistent
:class:`~repro.store.disk.DiskStore`: inserts spill to disk, restarts warm
from it (memory miss → disk hit → promote), so a restarted server answers
repeat traffic without re-paying ``T_tree``/``T_core`` — the paper's
amortization argument extended across process lifetimes.

The engine is directly embeddable (no server required)::

    with Engine(max_workers=2, store_dir="/var/cache/repro") as engine:
        job_id = engine.submit(JobSpec(dataset="Uniform100M2:10000"))
        result = engine.result(job_id)
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque

import numpy as np
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence

from repro.errors import InvalidInputError, ReproError, ServiceError
from repro.kokkos.counters import CostCounters
from repro.metrics import mfeatures_per_second
from repro.obs import (
    DEFAULT_ARCHIVE_BYTES,
    DEFAULT_PROFILE_HZ,
    DEFAULT_SAMPLE,
    DEFAULT_SLOS,
    DEFAULT_SLOW_THRESHOLD_S,
    MetricsRegistry,
    ResourceCollector,
    RetentionPolicy,
    SamplingProfiler,
    SloEngine,
    TraceArchive,
    empty_profile_doc,
    make_span,
    make_trace,
    new_trace_id,
    obs_enabled,
)
from repro.service.executor import (
    bvh_from_state,
    bvh_to_state,
    execute_spec,
    make_exec_spec,
)
from repro.service.jobs import (
    JobResult,
    JobSpec,
    JobStatus,
)
from repro.service.scheduler import BACKENDS, BatchScheduler, JobTicket
from repro.store import (
    DEFAULT_STORE_BYTES,
    DiskStore,
    TieredCache,
    combine_fingerprint,
    fingerprint_array,
)
from repro.timing import PhaseTimer

#: Default byte budgets: trees dominate (a BVH is ~20x the point bytes),
#: serialized results and core-distance arrays are comparatively small.
DEFAULT_TREE_CACHE_BYTES = 256 << 20
DEFAULT_RESULT_CACHE_BYTES = 64 << 20
DEFAULT_CORE_CACHE_BYTES = 64 << 20
#: Byte bound on finished-job payloads kept queryable by id (the result
#: cache is budgeted separately; per-job records must be too).
DEFAULT_RETAINED_BYTES = 256 << 20


@dataclass
class _Inflight:
    """Rendezvous for jobs coalescing onto one in-flight computation.

    The first job to miss the result cache for a fingerprint becomes the
    *leader* and computes; followers arriving while it runs block on
    ``done`` and reuse its payload instead of recomputing.  ``failed``
    sends followers back to computing for themselves (no stampede
    control — a failed leader is the rare case).
    """

    done: threading.Event = field(default_factory=threading.Event)
    payload: Optional[Dict[str, Any]] = None
    payload_nbytes: int = 0
    failed: bool = True  # flipped to False when the leader publishes


@dataclass
class _JobRecord:
    """Engine-side bookkeeping for one submitted job.

    ``ticket`` is ``None`` only for the instant between the record being
    registered and the scheduler accepting the job.
    """

    spec: JobSpec
    ticket: Optional[JobTicket]
    status: JobStatus = JobStatus.PENDING
    result: Optional[JobResult] = None
    payload_nbytes: int = 0
    #: Trace context shipped with the submission (router hops), if any.
    trace_parent: Optional[Dict[str, Any]] = None
    #: Wall-clock submission time — trace spans need epoch timestamps so
    #: router- and node-side spans sit on one axis.
    submitted_wall: float = 0.0
    #: Tiers whose artifact arrived from a replica peer (read-through)
    #: during this job — drives the ``peer_fetch`` trace span.
    peer_tiers: List[str] = field(default_factory=list)


class Engine:
    """Batch-serving engine over the single-tree EMST algorithms."""

    def __init__(self, *, max_workers: int = 2, max_batch: int = 8,
                 batch_window: float = 0.002, backend: str = "thread",
                 tree_cache_bytes: int = DEFAULT_TREE_CACHE_BYTES,
                 result_cache_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
                 core_cache_bytes: int = DEFAULT_CORE_CACHE_BYTES,
                 store_dir: Optional[str] = None,
                 store_bytes: int = DEFAULT_STORE_BYTES,
                 max_retained_jobs: int = 1024,
                 max_retained_bytes: int = DEFAULT_RETAINED_BYTES,
                 obs: Optional[bool] = None,
                 trace_archive_bytes: int = DEFAULT_ARCHIVE_BYTES,
                 trace_slow_threshold: float = DEFAULT_SLOW_THRESHOLD_S,
                 trace_sample: float = DEFAULT_SAMPLE,
                 slos: Optional[tuple] = None,
                 profile_hz: float = DEFAULT_PROFILE_HZ,
                 peers: Optional[Sequence[str]] = None,
                 peer_timeout: float = 5.0) -> None:
        if max_retained_jobs < 1:
            raise ValueError(
                f"max_retained_jobs must be >= 1, got {max_retained_jobs}")
        if max_retained_bytes < 1:
            raise ValueError(
                f"max_retained_bytes must be >= 1, got {max_retained_bytes}")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}")
        self.backend = backend
        #: One registry per engine — several engines share a test process
        #: (and the cluster demo), so instrumentation must not pool across
        #: them.  ``obs=None`` defers to the ``REPRO_OBS`` env knob;
        #: disabled, every instrument write is a single attribute check.
        self.registry = MetricsRegistry(
            enabled=obs_enabled() if obs is None else bool(obs))
        #: Name traces report for this engine's spans; the HTTP layer
        #: overwrites it with the served node name.
        self.node_name = ""
        #: Shared persistent spill target for all three tiers; ``None``
        #: keeps the engine memory-only (the pre-store behavior).
        self.store = DiskStore(store_dir, max_bytes=store_bytes) \
            if store_dir is not None else None
        self.tree_cache = TieredCache("tree", tree_cache_bytes, self.store,
                                      registry=self.registry)
        self.result_cache = TieredCache("result", result_cache_bytes,
                                        self.store, registry=self.registry)
        self.core_cache = TieredCache("core", core_cache_bytes, self.store,
                                      registry=self.registry)
        #: Replica peers consulted on a local miss before recomputing
        #: (read-through against their ``/v1/artifacts`` surface, in the
        #: configured order).  Empty = the pre-replication behavior.
        self.peers: List[str] = [u.rstrip("/") for u in (peers or ())]
        self._peer_clients: List[Any] = []
        self._peer_fetch_c = self.registry.counter(
            "repro_peer_fetch_total",
            "Peer artifact fetch attempts by tier and outcome "
            "(hit / miss / error).",
            labels=("tier", "outcome"))
        self._rebalance_copies_c = self.registry.counter(
            "repro_rebalance_copies_total",
            "Artifacts ingested by `repro rebalance` copies.")
        self._peer_timeout = peer_timeout
        if self.peers:
            self.set_peers(self.peers, timeout=peer_timeout)
        self.scheduler = BatchScheduler(
            self._run_job, max_workers=max_workers, max_batch=max_batch,
            batch_window=batch_window, backend=backend,
            registry=self.registry)
        self._coalesced_c = self.registry.counter(
            "repro_coalesced_total",
            "Jobs answered by riding an identical in-flight computation.")
        self._job_h = self.registry.histogram(
            "repro_job_seconds",
            "End-to-end runner seconds per job, by algorithm.",
            labels=("algorithm",))
        self._phase_h = self.registry.histogram(
            "repro_phase_seconds",
            "Seconds spent in each actually-executed phase "
            "(replayed cache-hit phases are not observed).",
            labels=("phase",))
        self.registry.gauge(
            "repro_uptime_seconds", "Seconds since the engine started.",
            fn=lambda: time.perf_counter() - self._started_at)
        self.registry.gauge(
            "repro_cache_bytes",
            "Bytes currently held by each memory cache tier.",
            labels=("tier",),
            fn=lambda: {"tree": self.tree_cache.memory.current_bytes,
                        "result": self.result_cache.memory.current_bytes,
                        "core": self.core_cache.memory.current_bytes})
        self.registry.gauge(
            "repro_store_bytes",
            "Bytes currently held by the persistent disk store.",
            fn=lambda: (self.store.current_bytes
                        if self.store is not None else 0.0))
        #: Tail-sampled trace retention + the SLO burn-rate gauges, both
        #: alive only when instrumentation is on (with ``REPRO_OBS=off``
        #: no trace exists to retain and the gauges would read zeros).
        #: The archive persists under ``<store_dir>/traces`` when the
        #: engine has a store dir, memory-only otherwise.
        self.trace_archive: Optional[TraceArchive] = None
        self.slo_engine: Optional[SloEngine] = None
        #: Continuous sampling profiler + /proc resource telemetry, the
        #: same lifecycle: with ``REPRO_OBS=off`` neither exists, so the
        #: process runs no extra thread and installs no gc hook.
        self.profiler: Optional[SamplingProfiler] = None
        self.resources: Optional[ResourceCollector] = None
        if self.registry.enabled:
            self.profiler = SamplingProfiler(self.registry, hz=profile_hz)
            self.resources = ResourceCollector(
                self.registry, worker_pids=self._worker_pids)
            archive_dir = os.path.join(store_dir, "traces") \
                if store_dir is not None else None
            self.trace_archive = TraceArchive(
                archive_dir, max_bytes=trace_archive_bytes,
                policy=RetentionPolicy(
                    slow_threshold_s=trace_slow_threshold,
                    sample=trace_sample),
                registry=self.registry)
            self.slo_engine = SloEngine(
                self.registry, slos=tuple(slos) if slos else DEFAULT_SLOS)
        #: Only the newest finished jobs stay queryable, bounded both by
        #: count and by total payload bytes (specs can carry inline point
        #: arrays and payloads can be large, so retention must be bounded
        #: on a long-running server).  In-flight jobs are never evicted.
        self.max_retained_jobs = max_retained_jobs
        self.max_retained_bytes = max_retained_bytes
        self._retain_floor = max(1, max_workers)
        self._retained_bytes = 0
        #: Memoized dataset-spec -> content fingerprint (specs are
        #: deterministic); lets exact repeats skip point regeneration.
        self._dataset_fp: Dict[str, str] = {}
        self._records: Dict[str, _JobRecord] = {}
        self._finished_order: Deque[str] = deque()
        #: In-flight computations by result fingerprint: identical
        #: concurrent jobs share one upstream execution (request
        #: coalescing); count of jobs answered that way.
        self._inflight: Dict[str, _Inflight] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._started_at = time.perf_counter()
        self._closed = False
        #: The construction-time configuration, verbatim, for the flight
        #: recorder — a dump must show what the process was booted with.
        self._config: Dict[str, Any] = {
            "max_workers": max_workers, "max_batch": max_batch,
            "batch_window": batch_window, "backend": backend,
            "tree_cache_bytes": tree_cache_bytes,
            "result_cache_bytes": result_cache_bytes,
            "core_cache_bytes": core_cache_bytes,
            "store_dir": store_dir, "store_bytes": store_bytes,
            "max_retained_jobs": max_retained_jobs,
            "max_retained_bytes": max_retained_bytes,
            "obs_enabled": self.registry.enabled,
            "trace_archive_bytes": trace_archive_bytes,
            "trace_slow_threshold": trace_slow_threshold,
            "trace_sample": trace_sample,
            "profile_hz": profile_hz,
            "peers": list(self.peers),
            "peer_timeout": peer_timeout,
        }

    def _worker_pids(self) -> list:
        """Live process-pool worker pids (empty for the thread backend).

        Read through the scheduler on every call — a broken pool gets
        replaced, and the replacement's workers are the ones that exist.
        """
        pool = self.scheduler.compute_pool
        if pool is None:
            return []
        processes = getattr(pool, "_processes", None) or {}
        return list(processes.keys())

    # ---------------------------------------------------------------- submit

    def submit(self, spec: JobSpec,
               trace: Optional[Dict[str, Any]] = None) -> str:
        """Queue a job; returns its id.  Spec errors raise synchronously;
        submitting to a closed engine raises :class:`ServiceError` (never a
        raw ``concurrent.futures`` shutdown error).

        ``trace`` is an upstream trace context (``{"trace_id", "spans"}``,
        typically parsed from the ``X-Repro-Trace`` header): the job's own
        spans are appended to it, so a routed job's trace shows the router
        hops ahead of the node-side lifecycle."""
        spec.validate()
        if self._closed:
            raise ServiceError("engine is closed")
        job_id = f"job-{next(self._ids):06d}"
        # The record must exist before the scheduler can hand the job to a
        # worker, or a fast worker would look it up before it is stored.
        record = _JobRecord(spec=spec, ticket=None, trace_parent=trace,
                            submitted_wall=time.time())
        with self._lock:
            self._records[job_id] = record
        try:
            record.ticket = self.scheduler.submit(job_id, spec,
                                                  priority=spec.priority)
        except BaseException:
            with self._lock:
                del self._records[job_id]
            raise
        return job_id

    # ---------------------------------------------------------------- query

    def _record(self, job_id: str) -> _JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise InvalidInputError(f"unknown job id {job_id!r}")
        return record

    def status(self, job_id: str) -> JobStatus:
        """Current lifecycle state of ``job_id``."""
        return self._record(job_id).status

    def result(self, job_id: str, timeout: Optional[float] = None
               ) -> JobResult:
        """Block until ``job_id`` finishes and return its result.

        A failed job returns a ``FAILED`` :class:`JobResult` (it does not
        raise); ``TimeoutError`` if the job is still queued or running after
        ``timeout`` seconds.  Results older than ``max_retained_jobs``
        finished jobs are forgotten and report an unknown id.
        """
        record = self._record(job_id)
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        # The ticket is unset only for the sub-ms window inside submit();
        # if it stays unset, submit() failed and removed the record — bound
        # the wait so a caller holding a stale record cannot spin forever.
        spin_deadline = time.perf_counter() + 1.0
        while record.ticket is None:
            now = time.perf_counter()
            if deadline is not None and now >= deadline:
                raise FutureTimeoutError(
                    f"job {job_id!r} was not scheduled within the timeout")
            if now >= spin_deadline:
                raise InvalidInputError(
                    f"job {job_id!r} was never scheduled (submit failed)")
            time.sleep(0.0005)
        remaining = None if deadline is None \
            else max(0.0, deadline - time.perf_counter())
        return record.ticket.future.result(remaining)

    def future(self, job_id: str) -> Optional["Future[JobResult]"]:
        """The job's completion future, or ``None`` during the sub-ms
        submit window before the scheduler ticket exists.

        JobResult futures never raise (failures become FAILED results),
        so a waiter may park on the future without result-consumption
        obligations — the asyncio front end bridges it with
        :func:`asyncio.wrap_future` to long-poll without a thread.
        Unknown ids raise :class:`InvalidInputError`.
        """
        record = self._record(job_id)
        return None if record.ticket is None else record.ticket.future

    def queue_depth(self) -> int:
        """Unfinished jobs (pending + running) — the admission-control
        backlog the HTTP front end bounds at submit time."""
        with self._lock:
            return sum(1 for record in self._records.values()
                       if not record.status.finished)

    def poll(self, job_id: str) -> Optional[JobResult]:
        """The finished result of ``job_id``, or ``None`` if still in flight."""
        record = self._record(job_id)
        if record.result is not None:  # set before the future resolves
            return record.result
        if record.ticket is None:
            return None
        try:
            return record.ticket.future.result(0)
        except FutureTimeoutError:
            return None

    def stats(self) -> Dict[str, Any]:
        """Engine, scheduler and per-tier cache statistics, JSON-safe."""
        with self._lock:
            by_status: Dict[str, int] = {s.value: 0 for s in JobStatus}
            for record in self._records.values():
                by_status[record.status.value] += 1
            total = len(self._records)
        coalesced = int(self._coalesced_c.value())
        return {
            "uptime_seconds": time.perf_counter() - self._started_at,
            "backend": self.backend,
            "jobs": {"total": total, **by_status},
            "coalesced_hits": coalesced,
            "scheduler": self.scheduler.stats(),
            "tree_cache": self.tree_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "core_cache": self.core_cache.stats(),
            "store": self.store.stats() if self.store is not None else None,
        }

    def flush(self, tier: Optional[str] = None) -> Dict[str, Any]:
        """Drop cached artifacts — every tier, or just ``tier`` — memory
        and disk.  Returns entry and byte counts reclaimed, JSON-safe.

        ``tier`` is one of ``tree`` / ``result`` / ``core``; ``None``
        empties everything (the original whole-cache flush).  Jobs already
        in flight keep any artifact references they hold; this only
        empties the caches.
        """
        tiers = {"tree": self.tree_cache, "result": self.result_cache,
                 "core": self.core_cache}
        if tier is not None and tier not in tiers:
            raise InvalidInputError(
                f"unknown cache tier {tier!r}; "
                f"use one of {', '.join(tiers)}")
        selected = tiers if tier is None else {tier: tiers[tier]}
        memory_bytes = sum(c.memory.current_bytes for c in selected.values())
        flushed: Dict[str, Any] = {name: cache.clear()
                                   for name, cache in selected.items()}
        flushed["memory_bytes"] = memory_bytes
        if self.store is None:
            flushed["store"] = 0
            flushed["store_bytes"] = 0
        elif tier is None:
            store_bytes = self.store.current_bytes
            flushed["store"] = self.store.clear()
            flushed["store_bytes"] = store_bytes
        else:
            entries, reclaimed = self.store.clear_tier(tier)
            flushed["store"] = entries
            flushed["store_bytes"] = reclaimed
        return flushed

    def compact(self) -> Optional[Dict[str, Any]]:
        """Force a journal compaction of the persistent store, if any.

        Returns the store's reclaim report, or ``None`` for a memory-only
        engine (nothing to compact is not an error — ops scripts can hit
        every node uniformly).
        """
        return self.store.compact() if self.store is not None else None

    # ------------------------------------------------------------ artifacts

    def artifact_entries(self) -> List[Dict[str, Any]]:
        """The persistent store's catalogue (empty for memory-only)."""
        return self.store.entries() if self.store is not None else []

    def artifact_bytes(self, tier: str, key: str) -> Optional[bytes]:
        """One stored artifact's raw blob bytes, or ``None``.

        Served straight off the store — deliberately *not* through the
        tiered lookup, so answering a peer never triggers this node's own
        peer-fetch (no fetch cycles between replicas).
        """
        self._check_tier(tier)
        if self.store is None:
            return None
        return self.store.get_blob_bytes(tier, key)

    def ingest_artifact(self, tier: str, key: str, data: bytes,
                        reason: str = "replica") -> bool:
        """Persist pushed blob bytes; returns whether they were stored.

        ``False`` on a memory-only node (a replica target without a store
        cannot hold warm state across restarts; the pusher counts it as
        rejected).  Invalid bytes raise :class:`InvalidInputError` — the
        store validates by deserializing before the atomic rename.
        """
        self._check_tier(tier)
        if self.store is None:
            return False
        stored = self.store.put_blob_bytes(tier, key, data)
        if stored and reason == "rebalance":
            self._rebalance_copies_c.inc()
        return stored

    @staticmethod
    def _check_tier(tier: str) -> None:
        if tier not in ("tree", "result", "core"):
            raise InvalidInputError(
                f"unknown artifact tier {tier!r}; "
                f"use one of ('tree', 'result', 'core')")

    def set_peers(self, peers: Sequence[str], *,
                  timeout: Optional[float] = None) -> None:
        """(Re)wire the replica peers consulted on a local cache miss.

        Callable after construction too — a fleet whose node URLs are
        only known once every sibling has bound its port (dynamic-port
        tests, orchestrators) wires the mesh here.
        """
        # Function-level import: cluster imports service (the router
        # speaks JobSpec), so the reverse edge must not exist at
        # module load.
        from repro.cluster.client import NodeClient
        from repro.cluster.topology import Node

        self.peers = [url.rstrip("/") for url in peers]
        if hasattr(self, "_config"):  # absent during __init__'s own call
            self._config["peers"] = list(self.peers)
        self._peer_clients = [
            NodeClient(Node(url),
                       timeout=timeout if timeout is not None
                       else self._peer_timeout, retries=0)
            for url in self.peers]
        hook = self._fetch_from_peers if self._peer_clients else None
        for cache in (self.tree_cache, self.result_cache,
                      self.core_cache):
            cache.peer_fetch = hook

    def _fetch_from_peers(self, tier: str, key: str) -> Optional[bytes]:
        """Read-through hook the cache tiers call after a local miss.

        Asks each configured peer's artifact endpoint in order; the first
        copy wins.  Unreachable peers count as errors and the walk
        continues — a dead replica must degrade to recompute, never fail
        the job.
        """
        from repro.cluster.client import NodeHTTPError
        for client in self._peer_clients:
            try:
                data = client.artifact(tier, key)
            except NodeHTTPError:
                continue  # 404: this peer does not hold it
            except ReproError:
                self._peer_fetch_c.inc(tier=tier, outcome="error")
                continue
            self._peer_fetch_c.inc(tier=tier, outcome="hit")
            return data
        self._peer_fetch_c.inc(tier=tier, outcome="miss")
        return None

    # ------------------------------------------------------------- obs query

    def traces(self, query: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        """Archived-trace records matching ``query`` (see
        :meth:`repro.obs.TraceArchive.query`), plus archive statistics.

        With instrumentation off there is no archive; the answer is an
        empty, well-formed document rather than an error, so fleet-wide
        tooling can hit every node uniformly.
        """
        if self.trace_archive is None:
            return {"traces": [], "stats": None}
        return {"traces": self.trace_archive.query(**(query or {})),
                "stats": self.trace_archive.stats()}

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """One archived trace record by id, or ``None``."""
        if self.trace_archive is None:
            return None
        return self.trace_archive.get(trace_id)

    def profile(self, seconds: Optional[float] = None,
                hz: Optional[float] = None) -> Dict[str, Any]:
        """A wall-clock profile document (``GET /v1/profile`` body).

        With ``seconds`` set, burst-samples for that window and returns
        what it captured; without it, answers instantly from the ring of
        recent always-on samples.  With instrumentation off the answer
        is an empty, well-formed document (``enabled: false``) rather
        than an error, matching :meth:`traces`.
        """
        if self.profiler is None:
            return empty_profile_doc()
        if seconds is not None and seconds > 0:
            return self.profiler.capture(seconds, hz)
        return self.profiler.profile_doc()

    def dump(self) -> Dict[str, Any]:
        """The engine's flight-recorder bundle: everything a postmortem
        wants from this process, in one JSON-safe snapshot."""
        with self._lock:
            inflight = [
                {"job_id": job_id, "status": record.status.value,
                 "algorithm": record.spec.algorithm,
                 "submitted_wall": record.submitted_wall}
                for job_id, record in self._records.items()
                if not record.status.finished]
        return {
            "ts": time.time(),
            "config": dict(self._config),
            "queue_depth": self.queue_depth(),
            "inflight_jobs": inflight,
            "stats": self.stats(),
            "metrics": self.registry.as_dict(),
            "slo": (self.slo_engine.report()
                    if self.slo_engine is not None else None),
            "trace_archive": (self.trace_archive.stats()
                              if self.trace_archive is not None else None),
            "profile": (self.profiler.stats()
                        if self.profiler is not None else None),
            "resources": (self.resources.snapshot()
                          if self.resources is not None else None),
        }

    # ---------------------------------------------------------------- worker

    def _run_job(self, ticket: JobTicket) -> JobResult:
        record = self._record(ticket.job_id)
        record.status = JobStatus.RUNNING
        try:
            result = self._execute(ticket)
        except Exception as exc:  # noqa: BLE001 — a job failure must not
            # take down the worker; non-library errors keep their type name.
            message = str(exc) if isinstance(exc, ReproError) \
                else f"{type(exc).__name__}: {exc}"
            result = JobResult(
                job_id=ticket.job_id, status=JobStatus.FAILED,
                algorithm=record.spec.algorithm, error=message,
                timings={"queue": ticket.queue_seconds,
                         "run": ticket.run_seconds})
        ticket.failed = result.status is JobStatus.FAILED
        self._job_h.observe(ticket.run_seconds,
                            algorithm=record.spec.algorithm)
        if self.registry.enabled:
            self._observe_phases(result)
            result.trace = self._build_trace(record, ticket, result)
            if self.trace_archive is not None:
                # The retention decision happens here, at completion,
                # with the finished trace in hand — the archive stores
                # the *same object* the client sees on JobResult.trace.
                self.trace_archive.offer(
                    job_id=ticket.job_id, trace=result.trace,
                    outcome=result.status.value,
                    algorithm=record.spec.algorithm,
                    duration_s=ticket.run_seconds, node=self.node_name,
                    ts=time.time())
        # record.payload_nbytes was set by _execute: the computed size for
        # misses, the cached entry's size for hits (a hit-record keeps the
        # payload alive even after cache eviction, so it must be charged).
        # Inline point arrays are retained with the spec and are NOT
        # shared, so they always count toward the byte bound.
        if record.spec.points is not None:
            record.payload_nbytes += int(
                np.asarray(record.spec.points).nbytes)
        record.result = result  # before .status: a finished status must
        record.status = result.status  # imply a readable result
        with self._lock:
            self._finished_order.append(ticket.job_id)
            self._retained_bytes += record.payload_nbytes
            # Keep at least one finished record per worker: with a tiny
            # budget, concurrent completions must not evict a record in
            # the instant between its append and its future resolving.
            while len(self._finished_order) > self._retain_floor and (
                    len(self._finished_order) > self.max_retained_jobs
                    or self._retained_bytes > self.max_retained_bytes):
                old = self._records.pop(self._finished_order.popleft(), None)
                if old is not None:
                    self._retained_bytes -= old.payload_nbytes
        return result

    def _replayed_phases(self, result: JobResult) -> set:
        """Timing keys that were replayed from a cache, not executed.

        A tree-tier hit replays ``algo_tree``, a core-tier hit
        ``algo_core``; a result hit or a coalesced follower replays every
        algorithm phase.  (``resolve`` / ``tree_build`` / ``compute`` only
        appear in ``timings`` when they actually ran.)
        """
        replayed = set()
        if result.cache.get("tree_hit"):
            replayed.add("algo_tree")
        if result.cache.get("core_hit"):
            replayed.add("algo_core")
        if result.cache.get("result_hit") or result.cache.get("coalesced"):
            replayed.update(k for k in result.timings
                            if k.startswith("algo_"))
        return replayed

    def _observe_phases(self, result: JobResult) -> None:
        """Feed actually-executed phase timings into the phase histogram.

        Replayed phases carry the *original* run's wall time: observing
        them again would double-count work the cache specifically avoided.
        """
        replayed = self._replayed_phases(result)
        for name, seconds in result.timings.items():
            if name in ("queue", "run") or name in replayed:
                continue
            self._phase_h.observe(seconds, phase=name.removeprefix("algo_"))

    def _build_trace(self, record: _JobRecord, ticket: JobTicket,
                     result: JobResult) -> Dict[str, Any]:
        """The job's span tree: upstream hops + node-side lifecycle."""
        parent = record.trace_parent
        node = self.node_name
        submitted = record.submitted_wall or time.time()
        queue_s = result.timings.get("queue", 0.0)
        run_s = result.timings.get("run", 0.0)
        exec_start = submitted + queue_s
        spans = list(parent["spans"]) if parent else []
        spans.append(make_span(
            "submit", node=node, start=submitted, job_id=ticket.job_id,
            algorithm=record.spec.algorithm))
        spans.append(make_span(
            "queued", node=node, start=submitted, duration_s=queue_s))
        spans.append(make_span(
            "batched", node=node, start=exec_start,
            batch_size=ticket.batch_size))
        replayed = self._replayed_phases(result)
        children = []
        offset = exec_start
        for name, seconds in result.timings.items():
            if name in ("queue", "run"):
                continue
            meta = {"replayed": True} if name in replayed else {}
            children.append(make_span(
                name.removeprefix("algo_"), node=node, start=offset,
                duration_s=seconds, **meta))
            if not meta:  # replayed phases occupy no wall time here
                offset += seconds
        if record.peer_tiers:
            # Where the warm artifacts actually came from: a replica
            # peer's store, not local compute and not this node's disk.
            children.append(make_span(
                "peer_fetch", node=node, start=exec_start,
                tiers=",".join(record.peer_tiers)))
        exec_meta: Dict[str, Any] = {}
        if result.payload is not None:
            inner = result.payload.get("emst", result.payload)
            totals = CostCounters.summed(
                (inner.get("counters") or {}).values())
            exec_meta["counters"] = totals.as_dict()
            exec_meta["divergence_factor"] = round(
                totals.divergence_factor, 4)
        spans.append(make_span(
            "executed", node=node, start=exec_start, duration_s=run_s,
            children=children, **exec_meta))
        if result.status is JobStatus.FAILED:
            spans.append(make_span("failed", node=node,
                                   start=exec_start + run_s,
                                   error=result.error))
        else:
            spans.append(make_span("served", node=node,
                                   start=exec_start + run_s,
                                   **result.cache))
        trace_id = parent["trace_id"] if parent else new_trace_id()
        return make_trace(trace_id, spans)

    def _execute(self, ticket: JobTicket) -> JobResult:
        spec: JobSpec = ticket.payload
        timer = PhaseTimer()
        # Dataset specs are deterministic, so their content fingerprint can
        # be memoized: a repeat job then reaches the result cache without
        # regenerating or rehashing the point set at all.
        points: Optional[np.ndarray] = None
        memo_key = None
        if spec.dataset is not None:  # normalize the optional CLI prefix
            memo_key = spec.dataset.removeprefix("dataset:")
        points_fp = (self._dataset_fp.get(memo_key)
                     if memo_key is not None else None)
        if points_fp is None:
            with timer.phase("resolve"):
                points = spec.resolve_points()
            points_fp = fingerprint_array(points)  # hash the buffer once
            if memo_key is not None:
                if len(self._dataset_fp) >= 4096:  # tiny entries, safety cap
                    self._dataset_fp.clear()
                self._dataset_fp[memo_key] = points_fp
        result_key = combine_fingerprint(points_fp, spec.params_key())
        payload, result_src = self.result_cache.get_with_source(result_key)
        result_hit = payload is not None
        tree_src = core_src = None
        tree_hit = core_hit = coalesced = False
        inflight: Optional[_Inflight] = None
        if payload is None:
            # Request coalescing: identical in-flight fingerprints share
            # one upstream execution.  The first miss leads and computes;
            # concurrent repeats block on its completion and reuse the
            # payload (a follower of a *failed* leader falls through and
            # computes for itself).
            with self._lock:
                leader_entry = self._inflight.get(result_key)
                if leader_entry is None:
                    inflight = _Inflight()
                    self._inflight[result_key] = inflight
            if inflight is None and leader_entry is not None:
                leader_entry.done.wait()
                if not leader_entry.failed:
                    payload = leader_entry.payload
                    coalesced = True
                    self._coalesced_c.inc()
                    self._record(ticket.job_id).payload_nbytes = \
                        leader_entry.payload_nbytes
        if payload is None:
            try:
                payload, payload_nbytes, outcome = self._compute_miss(
                    spec, points, points_fp, result_key, ticket)
                if inflight is not None:
                    inflight.payload = payload
                    inflight.payload_nbytes = payload_nbytes
                    inflight.failed = False
            finally:
                if inflight is not None:
                    with self._lock:
                        self._inflight.pop(result_key, None)
                    inflight.done.set()
            tree_hit = outcome["tree_hit"]
            tree_src = outcome["tree_src"]
            core_hit = outcome["core_hit"]
            core_src = outcome["core_src"]
            for name, seconds in outcome["phases"].items():
                timer.add(name, seconds)
            n_points = outcome["n_points"]
            dimension = outcome["dimension"]
        else:
            # A hit-record keeps the payload alive even after the result
            # cache evicts it, so it must be charged too — the retention
            # bound would otherwise under-count shared dicts whose
            # computing record already aged out.  (Coalesced followers
            # were charged from the leader's outcome above.)
            if not coalesced:
                self._record(ticket.job_id).payload_nbytes = \
                    self.result_cache.size_of(result_key) or 0
            inner = payload.get("emst", payload)
            n_points, dimension = inner["n_points"], inner["dimension"]

        peer_tiers = [tier for tier, src in (("result", result_src),
                                             ("tree", tree_src),
                                             ("core", core_src))
                      if src == "peer"]
        if peer_tiers:
            self._record(ticket.job_id).peer_tiers = peer_tiers
        for name, seconds in payload.get("phases", {}).items():
            timer.add(f"algo_{name}", seconds)
        run_seconds = ticket.run_seconds
        return JobResult(
            job_id=ticket.job_id,
            status=JobStatus.DONE,
            algorithm=spec.algorithm,
            payload=payload,
            timings={"queue": ticket.queue_seconds, "run": run_seconds,
                     **timer.as_dict()},
            cache={"result_hit": result_hit, "tree_hit": tree_hit,
                   "core_hit": core_hit, "coalesced": coalesced,
                   "result_disk_hit": result_src == "disk",
                   "tree_disk_hit": tree_src == "disk",
                   "core_disk_hit": core_src == "disk"},
            mfeatures_per_sec=mfeatures_per_second(
                n_points, dimension, max(run_seconds, 1e-12)),
        )

    def _compute_miss(self, spec, points, points_fp, result_key, ticket):
        """Execute a result-cache miss end to end; returns
        ``(payload, payload_nbytes, outcome-extras)``.  Factored out so
        the coalescing rendezvous in :meth:`_execute` can publish or
        discard the leader's computation in one place."""
        tree_key = combine_fingerprint(points_fp, spec.tree_key())
        tree_entry, tree_src = self.tree_cache.get_with_source(tree_key)
        tree_hit = tree_entry is not None
        # The core-distance tier applies to the metrics that need
        # ``T_core`` at all; its key folds in only ``k_pts`` (values
        # are caller-order, hence tree-independent), so an ``mrd_emst``
        # job and an ``hdbscan`` job share one artifact.
        core_key = None
        core_entry = None
        core_src = None
        core_hit = False
        if spec.algorithm in ("mrd_emst", "hdbscan"):
            core_key = combine_fingerprint(points_fp, spec.core_key())
            core_entry, core_src = \
                self.core_cache.get_with_source(core_key)
            core_hit = core_entry is not None
        # Dataset-backed jobs never ship the array to a process worker
        # — regenerating from the deterministic spec is cheaper than
        # pickling a large buffer across the boundary (the thread
        # backend passes the parent-resolved array by reference, which
        # is free).  Inline-point jobs have no spec to regenerate from,
        # so their array always travels.
        send_points = points
        if spec.dataset is not None and self.backend == "process":
            send_points = None
        exec_spec = make_exec_spec(
            spec, points=send_points,
            tree_state=bvh_to_state(tree_entry["bvh"])
            if tree_hit else None,
            tree_counters=tree_entry["counters"] if tree_hit else None,
            core_state=core_entry)
        outcome = self._dispatch(exec_spec)
        payload = outcome["payload"]
        # Only actually-computed features count toward the scheduler's
        # compute-throughput stat; cache hits would inflate it.
        ticket.features = outcome["features"]
        if outcome["tree_state"] is not None:
            self.tree_cache.put(
                tree_key,
                {"bvh": bvh_from_state(outcome["tree_state"]),
                 "counters": outcome["tree_counters"]})
        if core_key is not None and outcome["core_state"] is not None:
            self.core_cache.put(core_key, outcome["core_state"])
        payload_nbytes = outcome["payload_nbytes"]
        self.result_cache.put(result_key, payload, payload_nbytes)
        self._record(ticket.job_id).payload_nbytes = payload_nbytes
        extras = {
            "tree_hit": tree_hit, "tree_src": tree_src,
            "core_hit": core_hit, "core_src": core_src,
            "phases": outcome["phases"],
            "n_points": outcome["n_points"],
            "dimension": outcome["dimension"],
        }
        return payload, payload_nbytes, extras

    def _dispatch(self, exec_spec: Dict[str, Any]) -> Dict[str, Any]:
        """Run :func:`execute_spec` on the configured backend.

        The thread backend calls it in-process; the process backend submits
        it to the scheduler's process pool and blocks this worker thread on
        the pickled outcome (the GIL is released while waiting, which is
        the whole point).  A worker-side exception propagates and is
        absorbed by :meth:`_run_job` like any other job failure.

        A ``BrokenProcessPool`` (a worker died: OOM kill, segfault) would
        otherwise poison the executor permanently, so the pool is replaced
        and the job retried once on the fresh pool — a job that was merely
        sharing a pool another job broke then succeeds, while a job whose
        own compute crashes the worker fails its retry and is reported
        FAILED without taking the engine down with it.
        """
        pool = self.scheduler.compute_pool
        if pool is None:
            return execute_spec(exec_spec)
        # The worker process's frames are invisible to this process's
        # sampling profiler, so tag the blocking wait with a "dispatch"
        # phase: parent-side samples of a process-backend job then
        # attribute to a named phase instead of reading as idle.  The
        # throwaway timer keeps the tag out of the job's reported
        # timings (payload bytes and span trees must not change).
        with PhaseTimer().phase("dispatch"):
            try:
                return pool.submit(execute_spec, exec_spec).result()
            except BrokenExecutor:
                self.scheduler.replace_broken_compute_pool(pool)
                retry_pool = self.scheduler.compute_pool
                try:
                    return retry_pool.submit(execute_spec,
                                             exec_spec).result()
                except BrokenExecutor:
                    self.scheduler.replace_broken_compute_pool(retry_pool)
                    raise

    # ---------------------------------------------------------------- close

    def close(self) -> None:
        """Drain queued jobs and stop the worker pool (idempotent)."""
        if not self._closed:
            self._closed = True
            self.scheduler.shutdown(wait=True)
            if self.profiler is not None:
                self.profiler.stop()
            if self.resources is not None:
                self.resources.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
