"""Pure, picklable job execution for the serving engine.

:func:`execute_spec` is the compute half of what used to be
``Engine._execute``: it takes a plain-dict *execution spec* (points or a
dataset spec, the algorithm and its parameters, optionally a serialized
spatial index) and returns a plain-dict outcome.  It touches no engine
state — no caches, no records, no locks — so the engine can run it either
in-process (thread backend) or ship it to a ``ProcessPoolExecutor`` worker
(process backend) and get byte-identical payloads from both.

Cache interaction stays in the parent: the engine fingerprints and consults
its tiers *before* dispatch and inserts the returned tree/payload *after*
completion.  A :class:`~repro.bvh.bvh.BVH` crosses the process boundary as
a plain dict of arrays (:func:`bvh_to_state` / :func:`bvh_from_state`);
building that state is a matter of collecting array references, so the
thread backend pays nothing for sharing the same code path.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import build_tree, emst, mutual_reachability_emst
from repro.errors import InvalidInputError
from repro.hdbscan.hdbscan import HDBSCANResult, hdbscan
from repro.service.jobs import (
    JobSpec,
    emst_result_to_dict,
    hdbscan_result_to_dict,
)
from repro.timing import PhaseTimer

#: A Python list-of-scalars payload costs roughly 4x its raw array buffer.
_PYLIST_FACTOR = 4
#: Flat allowance for the payload's small fields (phases, counters, rounds).
_PAYLOAD_OVERHEAD = 8 << 10


def payload_nbytes(computed: Any) -> int:
    """O(1) size estimate of a serialized result from its source arrays.

    Walking the ``.tolist()``'ed payload element-by-element would cost
    seconds for large jobs; the array buffer sizes are available for free
    and the list expansion factor is roughly constant.
    """
    if isinstance(computed, HDBSCANResult):
        cond = computed.condensed
        own = (computed.labels.nbytes + computed.probabilities.nbytes +
               computed.linkage.nbytes + cond.parent.nbytes +
               cond.child.nbytes + cond.lambda_val.nbytes +
               cond.child_size.nbytes)
        return _PYLIST_FACTOR * own + payload_nbytes(computed.emst)
    return (_PYLIST_FACTOR * (computed.edges.nbytes + computed.weights.nbytes)
            + _PAYLOAD_OVERHEAD)


def bvh_to_state(tree: BVH) -> Dict[str, Any]:
    """Flatten a :class:`BVH` to a dict of arrays (references, no copies).

    The state is what the engine ships to process-pool workers: plain
    ndarrays and a list of ndarrays pickle efficiently (raw buffers, no
    per-element boxing), and reconstruction is allocation-free.
    """
    return {
        "points": tree.points, "order": tree.order, "codes": tree.codes,
        "left": tree.left, "right": tree.right, "parent": tree.parent,
        "lo": tree.lo, "hi": tree.hi, "schedule": list(tree.schedule),
        "codes_lo": tree.codes_lo,
    }


def bvh_from_state(state: Dict[str, Any]) -> BVH:
    """Rebuild a :class:`BVH` from :func:`bvh_to_state` output."""
    return BVH(**state)


def make_exec_spec(spec: JobSpec, *,
                   points: Optional[np.ndarray] = None,
                   tree_state: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """The plain-dict execution spec for ``spec``.

    ``points`` forwards an already-resolved array (the engine resolves when
    it needs the content fingerprint); left ``None`` for a dataset job, the
    worker resolves it instead — regenerating from the deterministic spec
    is cheaper than pickling a large array across the process boundary.
    """
    return {
        "points": points,
        "dataset": spec.dataset,
        "algorithm": spec.algorithm,
        "config": asdict(spec.config),
        "k_pts": spec.k_pts,
        "min_cluster_size": spec.min_cluster_size,
        "tree_state": tree_state,
    }


def execute_spec(exec_spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job to completion; pure function of its argument.

    Returns a dict with the serialized result ``payload``, its estimated
    ``payload_nbytes``, the execution ``phases`` (``resolve`` /
    ``tree_build`` / ``compute`` wall seconds), the problem shape
    (``n_points`` / ``dimension`` / ``features``) and — when the worker had
    to build the spatial index itself — its ``tree_state`` so the parent
    can cache it for the next job over the same points.
    """
    timer = PhaseTimer()
    config = SingleTreeConfig(**exec_spec["config"])
    points = exec_spec.get("points")
    if points is None:
        from repro.data import generate_from_spec
        with timer.phase("resolve"):
            points = generate_from_spec(exec_spec["dataset"])
    algorithm = exec_spec["algorithm"]
    tree_state = exec_spec.get("tree_state")
    built_tree = None
    if tree_state is not None:
        bvh = bvh_from_state(tree_state)
    else:
        with timer.phase("tree_build"):
            bvh = build_tree(points, config=config)
        built_tree = bvh
    # check_tree=False: the engine keys trees by a fingerprint of the exact
    # point bytes, so an injected tree is known to index these points.
    with timer.phase("compute"):
        if algorithm == "emst":
            computed = emst(points, config=config, bvh=bvh, check_tree=False)
            payload = emst_result_to_dict(computed)
        elif algorithm == "mrd_emst":
            computed = mutual_reachability_emst(
                points, exec_spec["k_pts"], config=config, bvh=bvh,
                check_tree=False)
            payload = emst_result_to_dict(computed)
        elif algorithm == "hdbscan":
            computed = hdbscan(
                points, min_cluster_size=exec_spec["min_cluster_size"],
                k_pts=exec_spec["k_pts"], config=config,
                bvh=bvh, check_tree=False)
            payload = hdbscan_result_to_dict(computed)
        else:
            # JobSpec.validate() admits nothing else, but a spec mutated
            # after validation must fail loudly, not run the wrong
            # algorithm.
            raise InvalidInputError(f"unknown algorithm {algorithm!r}")
    return {
        "payload": payload,
        "payload_nbytes": payload_nbytes(computed),
        "phases": timer.as_dict(),
        "n_points": int(points.shape[0]),
        "dimension": int(points.shape[1]),
        "features": int(points.shape[0] * points.shape[1]),
        "tree_state": bvh_to_state(built_tree)
        if built_tree is not None else None,
    }
