"""Pure, picklable job execution for the serving engine.

:func:`execute_spec` is the compute half of what used to be
``Engine._execute``: it takes a plain-dict *execution spec* (points or a
dataset spec, the algorithm and its parameters, optionally a serialized
spatial index and/or core-distance artifact) and returns a plain-dict
outcome.  It touches no engine state — no caches, no records, no locks —
so the engine can run it either in-process (thread backend) or ship it to
a ``ProcessPoolExecutor`` worker (process backend) and get byte-identical
payloads from both.

Cache interaction stays in the parent: the engine fingerprints and consults
its tiers *before* dispatch and inserts the returned artifacts *after*
completion.  A :class:`~repro.bvh.bvh.BVH` crosses the process boundary as
a plain dict of arrays (:func:`~repro.store.blob.bvh_to_state` /
:func:`~repro.store.blob.bvh_from_state`, re-exported here) — the same
serialization the persistent :mod:`repro.store` writes to disk, so a tree
built by one process (or node) is readable by any other.  Core distances
travel as one caller-order float64 array.

Injected artifacts *replay* the phase counters recorded when they were
first computed (cached alongside the arrays), so a payload served warm is
byte-identical — :func:`~repro.service.jobs.canonical_payload_bytes` —
to the same spec executed cold: a skipped phase reports zero seconds but
its original, deterministic work numbers.
"""

from __future__ import annotations

import threading
from dataclasses import asdict
from typing import Any, Dict, Optional

import numpy as np

from repro.bvh.workspace import TraversalWorkspace
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import build_tree, emst, mutual_reachability_emst
from repro.errors import InvalidInputError
from repro.hdbscan.hdbscan import HDBSCANResult, hdbscan
from repro.service.jobs import (
    JobSpec,
    emst_result_to_dict,
    hdbscan_result_to_dict,
)
from repro.store.blob import bvh_from_state, bvh_to_state  # noqa: F401 — the
# canonical BVH serialization lives with the on-disk format; re-exported
# because this is where the process backend historically imported it from.
from repro.timing import PhaseTimer

#: Per-worker reusable traversal scratch.  A workspace is not thread safe,
#: so each worker thread (thread backend) or process (process backend,
#: single-threaded workers) leases its own through :func:`_workspace`;
#: consecutive jobs on the same worker then skip stack reallocation and
#: the kernels' grow-only arenas stay warm.
_WORKER_STATE = threading.local()


def _workspace() -> TraversalWorkspace:
    ws = getattr(_WORKER_STATE, "workspace", None)
    if ws is None:
        ws = TraversalWorkspace()
        _WORKER_STATE.workspace = ws
    return ws


#: A Python list-of-scalars payload costs roughly 4x its raw array buffer.
_PYLIST_FACTOR = 4
#: Flat allowance for the payload's small fields (phases, counters, rounds).
_PAYLOAD_OVERHEAD = 8 << 10


def payload_nbytes(computed: Any) -> int:
    """O(1) size estimate of a serialized result from its source arrays.

    Walking the ``.tolist()``'ed payload element-by-element would cost
    seconds for large jobs; the array buffer sizes are available for free
    and the list expansion factor is roughly constant.
    """
    if isinstance(computed, HDBSCANResult):
        cond = computed.condensed
        own = (computed.labels.nbytes + computed.probabilities.nbytes +
               computed.linkage.nbytes + cond.parent.nbytes +
               cond.child.nbytes + cond.lambda_val.nbytes +
               cond.child_size.nbytes)
        return _PYLIST_FACTOR * own + payload_nbytes(computed.emst)
    return (_PYLIST_FACTOR * (computed.edges.nbytes + computed.weights.nbytes)
            + _PAYLOAD_OVERHEAD)


def make_exec_spec(spec: JobSpec, *,
                   points: Optional[np.ndarray] = None,
                   tree_state: Optional[Dict[str, Any]] = None,
                   tree_counters: Optional[Dict[str, Any]] = None,
                   core_state: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """The plain-dict execution spec for ``spec``.

    ``points`` forwards an already-resolved array (the engine resolves when
    it needs the content fingerprint); left ``None`` for a dataset job, the
    worker resolves it instead — regenerating from the deterministic spec
    is cheaper than pickling a large array across the process boundary.
    ``tree_state``/``tree_counters`` inject a cached spatial index and the
    work counters of its original build; ``core_state`` injects a cached
    core-distance artifact (``{"core_sq": array, "counters": dict}``).
    """
    return {
        "points": points,
        "dataset": spec.dataset,
        "algorithm": spec.algorithm,
        "config": asdict(spec.config),
        "k_pts": spec.k_pts,
        "min_cluster_size": spec.min_cluster_size,
        "tree_state": tree_state,
        "tree_counters": tree_counters,
        "core_state": core_state,
    }


def execute_spec(exec_spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job to completion; pure function of its argument.

    Returns a dict with the serialized result ``payload``, its estimated
    ``payload_nbytes``, the execution ``phases`` (``resolve`` /
    ``tree_build`` / ``compute`` wall seconds), the problem shape
    (``n_points`` / ``dimension`` / ``features``) and — when the worker had
    to build an artifact itself — its ``tree_state``/``tree_counters``
    and/or ``core_state`` so the parent can cache them for the next job
    over the same points.
    """
    timer = PhaseTimer()
    config = SingleTreeConfig(**exec_spec["config"])
    points = exec_spec.get("points")
    if points is None:
        from repro.data import generate_from_spec
        with timer.phase("resolve"):
            points = generate_from_spec(exec_spec["dataset"])
    algorithm = exec_spec["algorithm"]
    tree_state = exec_spec.get("tree_state")
    core_state = exec_spec.get("core_state")
    injected_core = core_state["core_sq"] if core_state is not None else None
    built_tree = None
    if tree_state is not None:
        bvh = bvh_from_state(tree_state)
    else:
        with timer.phase("tree_build"):
            bvh = build_tree(points, config=config)
        built_tree = bvh
    # check_tree=False: the engine keys trees by a fingerprint of the exact
    # point bytes, so an injected tree is known to index these points.
    workspace = _workspace()
    with timer.phase("compute"):
        if algorithm == "emst":
            computed = emst(points, config=config, bvh=bvh, check_tree=False,
                            workspace=workspace)
            payload = emst_result_to_dict(computed)
            emst_result = computed
        elif algorithm == "mrd_emst":
            computed = mutual_reachability_emst(
                points, exec_spec["k_pts"], config=config, bvh=bvh,
                check_tree=False, core_sq=injected_core,
                workspace=workspace)
            payload = emst_result_to_dict(computed)
            emst_result = computed
        elif algorithm == "hdbscan":
            computed = hdbscan(
                points, min_cluster_size=exec_spec["min_cluster_size"],
                k_pts=exec_spec["k_pts"], config=config,
                bvh=bvh, check_tree=False, core_sq=injected_core,
                workspace=workspace)
            payload = hdbscan_result_to_dict(computed)
            emst_result = computed.emst
        else:
            # JobSpec.validate() admits nothing else, but a spec mutated
            # after validation must fail loudly, not run the wrong
            # algorithm.
            raise InvalidInputError(f"unknown algorithm {algorithm!r}")
    # Replay the cached counters of injected artifacts into the payload: a
    # skipped phase reports zero wall seconds but its original (and
    # deterministic) work numbers, keeping warm payloads byte-identical in
    # canonical form to cold execution of the same spec.
    emst_payload = payload["emst"] if algorithm == "hdbscan" else payload
    if tree_state is not None and exec_spec.get("tree_counters") is not None:
        emst_payload["counters"]["tree"] = dict(exec_spec["tree_counters"])
    new_core_state = None
    if injected_core is not None:
        if core_state.get("counters") is not None:
            emst_payload["counters"]["core"] = dict(core_state["counters"])
    elif emst_result.core_sq is not None:
        new_core_state = {"core_sq": emst_result.core_sq,
                          "counters": emst_payload["counters"]["core"]}
    return {
        "payload": payload,
        "payload_nbytes": payload_nbytes(computed),
        "phases": timer.as_dict(),
        "n_points": int(points.shape[0]),
        "dimension": int(points.shape[1]),
        "features": int(points.shape[0] * points.shape[1]),
        "tree_state": bvh_to_state(built_tree)
        if built_tree is not None else None,
        "tree_counters": dict(emst_payload["counters"]["tree"])
        if built_tree is not None else None,
        "core_state": new_core_state,
    }
