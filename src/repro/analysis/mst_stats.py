"""Statistics over minimum spanning trees (cosmology-style analysis)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.mst.union_find import UnionFind


@dataclass(frozen=True)
class MSTStatistics:
    """Summary statistics of one spanning tree."""

    n_vertices: int
    n_edges: int
    total_weight: float
    mean_edge: float
    median_edge: float
    max_edge: float
    min_edge: float
    edge_percentiles: Dict[int, float]
    max_degree: int
    n_leaves: int
    n_branch_vertices: int

    @property
    def dynamic_range(self) -> float:
        """p99 / p1 of edge lengths — the clustering signal.

        Large for clustered (cosmological) point sets, near 1 for uniform
        fields; see ``examples/cosmology_mst.py``.
        """
        p1 = self.edge_percentiles[1]
        p99 = self.edge_percentiles[99]
        if p1 <= 0:
            return np.inf if p99 > 0 else 1.0
        return p99 / p1


def _validate(n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray):
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if u.shape != v.shape or u.shape != w.shape:
        raise InvalidInputError("edge arrays must have matching shapes")
    if u.size and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n):
        raise InvalidInputError("edge endpoint out of range")
    return u, v, w


def edge_length_statistics(w: np.ndarray) -> Dict[int, float]:
    """Percentiles {1, 5, 25, 50, 75, 95, 99} of edge lengths."""
    w = np.asarray(w, dtype=np.float64)
    if w.size == 0:
        return {p: 0.0 for p in (1, 5, 25, 50, 75, 95, 99)}
    return {p: float(np.percentile(w, p)) for p in (1, 5, 25, 50, 75, 95, 99)}


def degree_histogram(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vertex-degree counts: ``hist[k]`` = number of degree-k vertices.

    For a tree, degree-1 vertices are leaves; in cosmological MST
    analyses the degree distribution distinguishes filamentary from
    clustered morphology.
    """
    u, v, _ = _validate(n, u, v, np.zeros(np.asarray(u).shape))
    degrees = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    return np.bincount(degrees)


def cut_fragments(n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray,
                  cutoff: float) -> Tuple[np.ndarray, int]:
    """Connected fragments after removing edges longer than ``cutoff``.

    The MST analog of friends-of-friends group finding with linking
    length ``cutoff``: returns ``(labels, n_fragments)`` with labels in
    ``[0, n_fragments)`` ordered by first occurrence.
    """
    u, v, w = _validate(n, u, v, w)
    uf = UnionFind(n)
    keep = w <= cutoff
    for a, b in zip(u[keep], v[keep]):
        uf.union(int(a), int(b))
    roots = uf.component_labels()
    _, labels = np.unique(roots, return_inverse=True)
    # Re-order labels by first occurrence for determinism.
    order = np.full(labels.max() + 1 if n else 0, -1, dtype=np.int64)
    next_id = 0
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        lab = labels[i]
        if order[lab] < 0:
            order[lab] = next_id
            next_id += 1
        out[i] = order[lab]
    return out, next_id


def mst_statistics(n: int, u: np.ndarray, v: np.ndarray,
                   w: np.ndarray) -> MSTStatistics:
    """Full summary of a spanning tree's shape."""
    u, v, w = _validate(n, u, v, w)
    degrees = (np.bincount(u, minlength=n)
               + np.bincount(v, minlength=n)) if n else np.zeros(0, int)
    return MSTStatistics(
        n_vertices=n,
        n_edges=int(u.size),
        total_weight=float(w.sum()),
        mean_edge=float(w.mean()) if w.size else 0.0,
        median_edge=float(np.median(w)) if w.size else 0.0,
        max_edge=float(w.max()) if w.size else 0.0,
        min_edge=float(w.min()) if w.size else 0.0,
        edge_percentiles=edge_length_statistics(w),
        max_degree=int(degrees.max()) if n else 0,
        n_leaves=int(np.count_nonzero(degrees == 1)),
        n_branch_vertices=int(np.count_nonzero(degrees >= 3)),
    )
