"""MST analysis utilities for the paper's application domains.

The paper's motivating application is cosmology (Section 1), where the
MST is used as a clustering statistic beyond two-point functions
[Naidoo et al. 2020].  This package provides the standard MST statistics
those analyses consume — edge-length distributions, vertex degrees,
cut-based fragmentation (friends-of-friends-style group finding) —
operating on any :class:`~repro.core.emst.EMSTResult`.
"""

from repro.analysis.mst_stats import (
    MSTStatistics,
    cut_fragments,
    degree_histogram,
    edge_length_statistics,
    mst_statistics,
)

__all__ = [
    "MSTStatistics",
    "mst_statistics",
    "edge_length_statistics",
    "degree_histogram",
    "cut_fragments",
]
