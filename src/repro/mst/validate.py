"""Spanning-tree validators used by tests and as post-condition checks."""

from __future__ import annotations

import numpy as np

from repro.mst.union_find import UnionFind


def is_spanning_tree(n: int, u: np.ndarray, v: np.ndarray) -> bool:
    """True when edges ``(u, v)`` form a spanning tree of ``n`` vertices.

    A spanning tree has exactly ``n - 1`` edges and connects everything;
    acyclicity follows from those two properties.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if n == 0:
        return u.size == 0
    if u.size != n - 1:
        return False
    if u.size and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n):
        return False
    uf = UnionFind(n)
    for a, b in zip(u, v):
        if not uf.union(int(a), int(b)):
            return False  # cycle
    return uf.n_components == 1


def is_spanning_forest(n: int, u: np.ndarray, v: np.ndarray) -> bool:
    """True when the edges are acyclic (a forest over ``n`` vertices)."""
    uf = UnionFind(n)
    for a, b in zip(np.asarray(u, dtype=np.int64), np.asarray(v, dtype=np.int64)):
        if not uf.union(int(a), int(b)):
            return False
    return True


def total_weight(w: np.ndarray) -> float:
    """Sum of edge weights (float64 accumulation)."""
    return float(np.sum(np.asarray(w, dtype=np.float64)))


def edges_canonical(u: np.ndarray, v: np.ndarray) -> set:
    """Set of ``(min, max)`` endpoint tuples for order-insensitive equality."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    return {(int(min(a, b)), int(max(a, b))) for a, b in zip(u, v)}
