"""Prim's algorithm (1957) on an explicit edge list.

Grows a single component from vertex 0, repeatedly adding the
minimum-weight cut edge (Section 2).  ``O(m log n)`` with a binary heap.
Inherently sequential — included as a correctness oracle and to let the
benchmark suite demonstrate *why* the paper chooses Borůvka for GPUs.

Tie-breaking: heap entries compare as ``(w, min(u,v), max(u,v))`` tuples, so
the result matches Kruskal/Borůvka exactly.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters


def prim(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    *,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum spanning forest via Prim's algorithm.

    Returns ``(mu, mv, mw)`` with ``mu < mv`` per edge.  Disconnected
    graphs restart the growth from the next unvisited vertex, yielding a
    spanning forest (same convention as :func:`repro.mst.kruskal.kruskal`).
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if u.shape != v.shape or u.shape != w.shape:
        raise InvalidInputError("edge arrays must have matching shapes")
    if u.size and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n):
        raise InvalidInputError("edge endpoint out of range")

    # Adjacency in CSR form.
    deg = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=offsets[1:])
    nbr = np.empty(2 * u.size, dtype=np.int64)
    wgt = np.empty(2 * u.size, dtype=np.float64)
    cursor = offsets[:-1].copy()
    for a, b, ww in zip(u, v, w):
        nbr[cursor[a]] = b
        wgt[cursor[a]] = ww
        cursor[a] += 1
        nbr[cursor[b]] = a
        wgt[cursor[b]] = ww
        cursor[b] += 1

    visited = np.zeros(n, dtype=bool)
    mu_list, mv_list, mw_list = [], [], []
    heap: list = []

    def push_edges(x: int) -> None:
        for j in range(offsets[x], offsets[x + 1]):
            y = int(nbr[j])
            if not visited[y]:
                ww = float(wgt[j])
                heapq.heappush(heap, (ww, min(x, y), max(x, y), x, y))

    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        push_edges(start)
        while heap:
            ww, _, _, x, y = heapq.heappop(heap)
            if visited[y]:
                continue
            visited[y] = True
            mu_list.append(min(x, y))
            mv_list.append(max(x, y))
            mw_list.append(ww)
            push_edges(y)

    if counters is not None:
        counters.record_bulk(u.size, ops_per_item=8.0, bytes_per_item=24.0)
        counters.record_sort(u.size)  # heap operations ~ m log n
    return (np.asarray(mu_list, dtype=np.int64),
            np.asarray(mv_list, dtype=np.int64),
            np.asarray(mw_list, dtype=np.float64))
