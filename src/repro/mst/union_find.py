"""Disjoint-set (union-find) structure with path compression + union by rank.

Used by Kruskal's algorithm, the WSPD pipeline and the HDBSCAN* dendrogram
construction.  A vectorized ``find_many`` supports bulk queries; the EMST
merge phase (:mod:`repro.core.merge`) uses its own pointer-jumping scheme
because component labels there live in a flat array, matching the paper.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Array-based disjoint sets over the vertex ids ``0..n-1``."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"negative element count: {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.n_components = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set, compressing the path."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized find (pointer jumping, no compression of inputs)."""
        roots = np.asarray(xs, dtype=np.int64).copy()
        while True:
            parents = self.parent[roots]
            if np.array_equal(parents, roots):
                return roots
            roots = self.parent[parents]

    def component_labels(self) -> np.ndarray:
        """Canonical label (set representative) for every element."""
        return self.find_many(np.arange(self.parent.shape[0]))
