"""Classical minimum-spanning-tree algorithms on explicit graphs.

The paper's Section 2 surveys Borůvka (1926), Kruskal (1956) and Prim (1957);
all three are implemented here on explicit edge lists, both as baselines for
the EMST algorithms (which never materialize the distance graph) and as the
MST engines inside the WSPD pipeline (:mod:`repro.baselines.memogfk`).

Edge comparison throughout uses the paper's tie-breaking total order
``(weight, min(u, v), max(u, v))`` so all algorithms agree on one unique MST
even with duplicate weights.
"""

from repro.mst.union_find import UnionFind
from repro.mst.kruskal import kruskal
from repro.mst.prim import prim
from repro.mst.boruvka import boruvka_graph
from repro.mst.validate import is_spanning_tree, total_weight

__all__ = [
    "UnionFind",
    "kruskal",
    "prim",
    "boruvka_graph",
    "is_spanning_tree",
    "total_weight",
]
