"""Kruskal's algorithm (1956) on an explicit edge list.

Edges are processed in the tie-broken total order ``(w, min(u,v), max(u,v))``
— Section 2 of the paper — so the produced MST is unique and identical to
the other algorithms' output.  Complexity ``O(m log m)``; the sort is
recorded into the cost counters because it is the dominant term the paper's
MemoGFK phase analysis attributes to ``T_mst``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters
from repro.mst.union_find import UnionFind


def _validate_edges(n: int, u: np.ndarray, v: np.ndarray,
                    w: np.ndarray) -> None:
    if u.shape != v.shape or u.shape != w.shape:
        raise InvalidInputError("edge arrays must have matching shapes")
    if u.size and (u.min() < 0 or v.min() < 0
                   or u.max() >= n or v.max() >= n):
        raise InvalidInputError("edge endpoint out of range")


def kruskal(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    *,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum spanning forest of the graph ``(n, edges)``.

    Returns ``(mu, mv, mw)`` — the selected edges with ``mu < mv``, in
    selection (weight) order.  For a connected graph this is the MST with
    ``n - 1`` edges; otherwise one tree per connected component.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    _validate_edges(n, u, v, w)

    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    order = np.lexsort((hi, lo, w))
    if counters is not None:
        counters.record_sort(w.size, bytes_per_item=24.0)

    uf = UnionFind(n)
    mu = np.empty(min(max(n - 1, 0), w.size), dtype=np.int64)
    mv = np.empty_like(mu)
    mw = np.empty(mu.shape, dtype=np.float64)
    count = 0
    for idx in order:
        a = int(lo[idx])
        b = int(hi[idx])
        if uf.union(a, b):
            mu[count] = a
            mv[count] = b
            mw[count] = w[idx]
            count += 1
            if count == n - 1:
                break
    if counters is not None:
        counters.record_bulk(w.size, ops_per_item=6.0, bytes_per_item=24.0)
    return mu[:count], mv[:count], mw[:count]
