"""Borůvka's algorithm (1926) on an explicit edge list, vectorized.

Each round every component selects the minimum outgoing edge of its cut
under the tie-broken total order and the selected edges merge their
components (Algorithm 1 of the paper).  All per-round work is NumPy
array passes — the same structure the paper exploits for GPU parallelism —
which also makes this the fastest explicit-graph MST in the repository.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError, InvalidInputError
from repro.kokkos.counters import CostCounters
from repro.mst.union_find import UnionFind


def boruvka_graph(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    *,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum spanning forest via Borůvka rounds.

    Returns ``(mu, mv, mw)`` with ``mu < mv`` per edge, ordered by the
    round in which each edge was found.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if u.shape != v.shape or u.shape != w.shape:
        raise InvalidInputError("edge arrays must have matching shapes")
    if u.size and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n):
        raise InvalidInputError("edge endpoint out of range")

    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    uf = UnionFind(n)
    mu_list, mv_list, mw_list = [], [], []

    max_rounds = max(int(np.ceil(np.log2(max(n, 2)))) + 2, 4)
    for _ in range(max_rounds):
        labels = uf.component_labels()
        cu = labels[lo]
        cv = labels[hi]
        cross = cu != cv
        if not np.any(cross):
            break
        idx = np.nonzero(cross)[0]

        # Minimum cut edge per component under (w, lo, hi): duplicate each
        # crossing edge for both of its components, sort, take group heads.
        comp = np.concatenate([cu[idx], cv[idx]])
        edge = np.concatenate([idx, idx])
        order = np.lexsort((hi[edge], lo[edge], w[edge], comp))
        comp_sorted = comp[order]
        heads = np.ones(comp_sorted.size, dtype=bool)
        heads[1:] = comp_sorted[1:] != comp_sorted[:-1]
        chosen = np.unique(edge[order[heads]])
        if counters is not None:
            counters.record_bulk(idx.size, ops_per_item=8.0,
                                 bytes_per_item=32.0)
            counters.record_sort(2 * idx.size)

        merged_any = False
        for e in chosen:
            if uf.union(int(lo[e]), int(hi[e])):
                mu_list.append(int(lo[e]))
                mv_list.append(int(hi[e]))
                mw_list.append(float(w[e]))
                merged_any = True
        if not merged_any:
            raise ConvergenceError("Borůvka round merged no components")
        if uf.n_components == 1:
            break
    else:
        # The loop bound dlog2(n)e is a theorem; hitting it means a bug.
        labels = uf.component_labels()
        if np.any(labels[lo] != labels[hi]):
            raise ConvergenceError("Borůvka exceeded its round bound")

    return (np.asarray(mu_list, dtype=np.int64),
            np.asarray(mv_list, dtype=np.int64),
            np.asarray(mw_list, dtype=np.float64))
