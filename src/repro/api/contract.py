"""The ``/v1`` wire contract, shared by the node and router front ends.

One module owns everything a ``/v1`` server must agree on — the route
table, query-parameter validation, body-size bounds, the error envelope
and the ``X-Repro-*`` headers — so the two HTTP hosts
(:mod:`repro.service.server` and :mod:`repro.cluster.server`) cannot
drift apart.  The transport lives in :mod:`repro.api.http`; this module
is pure request/response logic and runs unchanged under any host.

Error envelope
--------------
Every non-2xx response body is::

    {"error": {"code": <str>, "message": <str>, "retryable": <bool>}}

``code`` is a stable machine-readable name (see the ``ERR_*`` constants),
``message`` the human-readable detail (what the legacy ``{"error": str}``
shape carried), and ``retryable`` tells a client whether the same request
may succeed elsewhere or later — the cluster client keys failover on it
instead of guessing from the status class.  2xx bodies are unchanged, so
the envelope is additive for well-behaved clients.

Dispatch
--------
:class:`WireAPI` parses a :class:`Request`, validates the query/body and
calls one of the abstract operations (``healthz``, ``stats``,
``metrics_json``/``metrics_text``, ``submit``, ``job``, ``flush``,
``compact``, ``traces``/``trace``, ``events``, ``dump``,
``artifact_list``/``artifact_get``/``artifact_put``) implemented by
the node backend (over an
:class:`~repro.service.engine.Engine`) or the router backend (over a
:class:`~repro.cluster.router.ClusterRouter`).  Backends raise
:class:`ApiError` (or library errors mapped here) and the response is the
uniform envelope.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.errors import (
    ClusterError,
    InvalidInputError,
    ServiceError,
)
from repro.obs.profiler import render_collapsed

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest accepted request body (an inline 1M-point 3D job is ~60 MB of
#: JSON; anything bigger should arrive as a dataset spec).
MAX_BODY_BYTES = 256 << 20

#: Cap on a single ``GET /v1/jobs/<id>`` long-poll; clients needing longer
#: re-poll in chunks (see ``repro.client.Client.wait``).
MAX_WAIT_SECONDS = 60.0

# --------------------------------------------------------------- error codes
#: The request was malformed (bad spec, bad JSON, bad query parameter).
ERR_BAD_REQUEST = "bad_request"
#: The job id is unknown (never submitted, or retention-evicted).
ERR_UNKNOWN_JOB = "unknown_job"
#: The trace id is not in the archive (sampled out, evicted, or never
#: seen by this node/fleet).
ERR_UNKNOWN_TRACE = "unknown_trace"
#: No such endpoint (or unsupported method on an existing one).
ERR_NOT_FOUND = "not_found"
#: Admission control shed the request; retry after ``Retry-After`` seconds.
ERR_OVERLOADED = "overloaded"
#: The service (engine shutting down / no node reachable) cannot take it.
ERR_UNAVAILABLE = "unavailable"
#: A router relaying a node error that carried no envelope of its own.
ERR_UPSTREAM = "upstream_error"
#: An unexpected server-side failure.
ERR_INTERNAL = "internal"

_DEFAULT_CODES = {400: ERR_BAD_REQUEST, 404: ERR_NOT_FOUND,
                  429: ERR_OVERLOADED, 500: ERR_INTERNAL,
                  503: ERR_UNAVAILABLE}


class ApiError(Exception):
    """One non-2xx outcome, carrying everything the envelope needs.

    ``retryable`` defaults by status class: shed (429) and availability
    (5xx) conditions may succeed elsewhere/later, client errors (4xx)
    would just repeat the mistake.  ``retry_after`` (seconds) becomes a
    ``Retry-After`` header.
    """

    def __init__(self, status: int, message: str, *,
                 code: Optional[str] = None,
                 retryable: Optional[bool] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code or _DEFAULT_CODES.get(status, ERR_INTERNAL)
        self.retryable = (status == 429 or status >= 500) \
            if retryable is None else bool(retryable)
        self.retry_after = retry_after


def error_envelope(code: str, message: str, retryable: bool
                   ) -> Dict[str, Any]:
    """The uniform non-2xx body shape."""
    return {"error": {"code": code, "message": message,
                      "retryable": bool(retryable)}}


def parse_error_envelope(payload: Any
                         ) -> Tuple[Optional[str], str, Optional[bool]]:
    """``(code, message, retryable)`` from a decoded error body.

    Tolerant of the legacy ``{"error": "<string>"}`` shape and arbitrary
    bodies: missing fields come back as ``None`` (``retryable=None``
    means *unknown* — callers fall back to status-class heuristics).
    """
    err = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(err, dict):
        retryable = err.get("retryable")
        return (str(err.get("code")) if err.get("code") is not None else None,
                str(err.get("message", "")),
                retryable if isinstance(retryable, bool) else None)
    if err is not None:
        return None, str(err), None
    return None, str(payload), None


def parse_wait_param(query: str) -> float:
    """Long-poll seconds from a job-endpoint query string.

    ``wait_s`` is the canonical spelling, ``wait`` the original one; the
    explicit suffix wins when both are (oddly) supplied.  Bounded by
    :data:`MAX_WAIT_SECONDS`, default 0.  Shared by the node and router
    front ends so the wire contract cannot silently diverge.  Raises
    :class:`InvalidInputError` on a non-numeric value.
    """
    wait = 0.0
    params = parse_qs(query)
    for name in ("wait", "wait_s"):
        if name in params:
            try:
                wait = min(float(params[name][0]), MAX_WAIT_SECONDS)
            except ValueError:
                raise InvalidInputError(f"{name} must be a number")
    return wait


def parse_format_param(query: str) -> str:
    """``format=`` from a metrics query string (``prometheus`` default).

    Validated here — an unknown value is a 400 envelope, never a handler
    crash — which is the shared fix for the historical ad-hoc parsing.
    """
    fmt = parse_qs(query).get("format", ["prometheus"])[0]
    if fmt not in ("prometheus", "json"):
        raise ApiError(400, f"unknown metrics format {fmt!r}; "
                            f"use 'prometheus' or 'json'")
    return fmt


#: Most trace records one query may return (the router multiplies this
#: across nodes before merging, so it bounds fan-out payloads too).
MAX_TRACE_LIMIT = 500
#: Default trace records per query.
DEFAULT_TRACE_LIMIT = 50
#: Most events one ``/v1/admin/events`` request may return.
MAX_EVENTS_LIMIT = 1000

#: Archived-trace outcomes a query filter may name.
TRACE_OUTCOMES = ("done", "failed")


def parse_traces_query(query: str) -> Dict[str, Any]:
    """Validated filters from a ``GET /v1/traces`` query string.

    Returns kwargs for :meth:`repro.obs.TraceArchive.query` —
    ``since`` (unix seconds), ``min_duration_s`` (the wire speaks
    ``min_duration_ms``), ``outcome``, ``algorithm``, ``limit``.  Bad
    values are 400 envelopes here, identically on node and router.
    """
    params = parse_qs(query)
    out: Dict[str, Any] = {"limit": DEFAULT_TRACE_LIMIT}

    def _float(name: str) -> Optional[float]:
        if name not in params:
            return None
        try:
            value = float(params[name][0])
        except ValueError:
            raise ApiError(400, f"{name} must be a number")
        if value < 0:
            raise ApiError(400, f"{name} must be >= 0")
        return value

    since = _float("since")
    if since is not None:
        out["since"] = since
    min_ms = _float("min_duration_ms")
    if min_ms is not None:
        out["min_duration_s"] = min_ms / 1000.0
    if "outcome" in params:
        outcome = params["outcome"][0]
        if outcome not in TRACE_OUTCOMES:
            raise ApiError(400, f"unknown outcome {outcome!r}; "
                                f"use one of {TRACE_OUTCOMES}")
        out["outcome"] = outcome
    if "algorithm" in params:
        out["algorithm"] = params["algorithm"][0]
    if "limit" in params:
        try:
            limit = int(params["limit"][0])
        except ValueError:
            raise ApiError(400, "limit must be an integer")
        if not 1 <= limit <= MAX_TRACE_LIMIT:
            raise ApiError(400, f"limit must be in "
                                f"[1, {MAX_TRACE_LIMIT}]")
        out["limit"] = limit
    return out


#: Bounds on an on-demand profile capture (the sampling window holds a
#: server-side worker for its whole duration, so it must be bounded the
#: same way long-polls are).
MAX_PROFILE_WAIT_SECONDS = 30.0
MAX_PROFILE_QUERY_HZ = 199.0


def parse_profile_query(query: str) -> Dict[str, Any]:
    """Validated parameters from a ``GET /v1/profile`` query string.

    Returns ``{"seconds", "hz", "format"}`` — ``seconds`` (capture
    window; ``None`` answers from the ring of recent samples), ``hz``
    (burst sampling rate; ``None`` lets the profiler choose) and
    ``format`` (``collapsed`` text by default, ``json`` for the full
    document).  Bad values are 400 envelopes here, identically on node
    and router.
    """
    params = parse_qs(query)
    out: Dict[str, Any] = {"seconds": None, "hz": None,
                           "format": "collapsed"}
    if "seconds" in params:
        try:
            seconds = float(params["seconds"][0])
        except ValueError:
            raise ApiError(400, "seconds must be a number")
        if not 0 <= seconds <= MAX_PROFILE_WAIT_SECONDS:
            raise ApiError(400, f"seconds must be in "
                                f"[0, {MAX_PROFILE_WAIT_SECONDS:g}]")
        out["seconds"] = seconds
    if "hz" in params:
        try:
            hz = float(params["hz"][0])
        except ValueError:
            raise ApiError(400, "hz must be a number")
        if not 0 < hz <= MAX_PROFILE_QUERY_HZ:
            raise ApiError(400, f"hz must be in "
                                f"(0, {MAX_PROFILE_QUERY_HZ:g}]")
        out["hz"] = hz
    if "format" in params:
        fmt = params["format"][0]
        if fmt not in ("collapsed", "json"):
            raise ApiError(400, f"unknown profile format {fmt!r}; "
                                f"use 'collapsed' or 'json'")
        out["format"] = fmt
    return out


#: Artifact tiers the ``/v1/artifacts`` surface serves — exactly the blob
#: codec set (:data:`repro.store.blob.CODECS`), restated here so the wire
#: contract has no import edge into the store.
ARTIFACT_TIERS = ("tree", "result", "core")

#: Content type of a raw ``.npz`` artifact body.
ARTIFACT_CONTENT_TYPE = "application/octet-stream"

#: Why an artifact is being pushed; bounds the per-reason telemetry.
ARTIFACT_REASONS = ("replica", "rebalance")

#: Artifact keys are content fingerprints: exactly one sha256 hex digest.
#: Validated before any path math — a key is a filesystem path component
#: on the serving side, so nothing traversal-shaped may pass.
_ARTIFACT_KEY_RE = re.compile(r"\A[0-9a-f]{64}\Z")


def parse_artifact_ref(tier: str, key: str) -> Tuple[str, str]:
    """Validate one ``/v1/artifacts/<tier>/<key>`` reference.

    Shared by GET and POST on node and router alike; a bad tier or a
    non-fingerprint key is a 400 envelope before any backend runs.
    """
    if tier not in ARTIFACT_TIERS:
        raise ApiError(400, f"unknown artifact tier {tier!r}; "
                            f"use one of {ARTIFACT_TIERS}")
    if not _ARTIFACT_KEY_RE.match(key):
        raise ApiError(400, "artifact key must be a 64-char hex fingerprint")
    return tier, key


def parse_reason_param(query: str) -> str:
    """``reason=`` on an artifact push (``replica`` default)."""
    reason = parse_qs(query).get("reason", [ARTIFACT_REASONS[0]])[0]
    if reason not in ARTIFACT_REASONS:
        raise ApiError(400, f"unknown push reason {reason!r}; "
                            f"use one of {ARTIFACT_REASONS}")
    return reason


def parse_events_limit(query: str) -> Optional[int]:
    """``limit=`` for ``GET /v1/admin/events`` (``None`` = whole ring)."""
    params = parse_qs(query)
    if "limit" not in params:
        return None
    try:
        limit = int(params["limit"][0])
    except ValueError:
        raise ApiError(400, "limit must be an integer")
    if not 1 <= limit <= MAX_EVENTS_LIMIT:
        raise ApiError(400, f"limit must be in [1, {MAX_EVENTS_LIMIT}]")
    return limit


def normalize_endpoint(path: str) -> str:
    """The path normalized for metric labels (bounded cardinality)."""
    parts = [p for p in path.split("/") if p]
    if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
        return "/v1/jobs/{id}"
    if len(parts) == 3 and parts[:2] == ["v1", "traces"]:
        return "/v1/traces/{id}"
    if len(parts) == 4 and parts[:2] == ["v1", "artifacts"]:
        tier = parts[2] if parts[2] in ARTIFACT_TIERS else "{tier}"
        return f"/v1/artifacts/{tier}/{{key}}"
    return "/" + "/".join(parts) if parts else "/"


# ----------------------------------------------------------- wire messages

@dataclass
class Request:
    """One parsed HTTP request, transport-independent."""

    method: str
    path: str
    query: str = ""
    #: Header names lowercased by the transport.
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def target(self) -> str:
        """The original request target (path + query), for access logs."""
        return f"{self.path}?{self.query}" if self.query else self.path


@dataclass
class Response:
    """One response: status, encoded body, and extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: Close the connection after this response (transport hint).
    close: bool = False


def json_response(status: int, obj: Any,
                  node: Optional[str] = None) -> Response:
    """Encode ``obj`` exactly as the legacy servers did (byte-identical)."""
    response = Response(status, json.dumps(obj).encode())
    if node:
        response.headers["X-Repro-Node"] = node
    return response


def error_response(exc: ApiError) -> Response:
    """The envelope response for one :class:`ApiError`."""
    response = json_response(
        exc.status, error_envelope(exc.code, str(exc), exc.retryable))
    if exc.retry_after is not None:
        response.headers["Retry-After"] = f"{exc.retry_after:g}"
    return response


# ---------------------------------------------------------------- dispatch

class WireAPI:
    """Routes parsed ``/v1`` requests onto the backend operations.

    Subclasses (the node's ``EngineAPI``, the router's ``RouterAPI``)
    implement the ``async`` operations below; everything else — the route
    table, query validation, body decoding, the error envelope — lives
    here, once.  Large JSON encode/decode hops through a worker thread so
    a 60 MB inline-points job never stalls the event loop.
    """

    # Backend operations ------------------------------------------------
    async def healthz(self) -> Dict[str, Any]:
        raise NotImplementedError

    async def stats(self) -> Dict[str, Any]:
        raise NotImplementedError

    async def metrics_json(self) -> Dict[str, Any]:
        raise NotImplementedError

    async def metrics_text(self) -> str:
        raise NotImplementedError

    async def submit(self, data: Dict[str, Any],
                     trace_header: Optional[str]
                     ) -> Tuple[Dict[str, Any], Optional[str]]:
        """Accept one job body; returns ``(202 body, serving node)``."""
        raise NotImplementedError

    async def job(self, job_id: str, wait: float
                  ) -> Tuple[Dict[str, Any], Optional[str]]:
        """Look one job up; returns ``(body, serving node)``."""
        raise NotImplementedError

    async def flush(self, data: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    async def compact(self) -> Dict[str, Any]:
        raise NotImplementedError

    async def traces(self, query: Dict[str, Any]) -> Dict[str, Any]:
        """Archived-trace query (validated kwargs from
        :func:`parse_traces_query`)."""
        raise NotImplementedError

    async def trace(self, trace_id: str
                    ) -> Tuple[Dict[str, Any], Optional[str]]:
        """One archived trace; returns ``(record body, serving node)``."""
        raise NotImplementedError

    async def events(self, limit: Optional[int]) -> Dict[str, Any]:
        """The in-memory structured-event ring (newest ``limit``)."""
        raise NotImplementedError

    async def profile(self, seconds: Optional[float],
                      hz: Optional[float]) -> Dict[str, Any]:
        """A sampling-profiler document (burst capture when ``seconds``
        is set, the recent-sample ring otherwise)."""
        raise NotImplementedError

    async def dump(self) -> Dict[str, Any]:
        """Flight-recorder snapshot: one debug bundle for postmortems."""
        raise NotImplementedError

    async def artifact_list(self) -> Dict[str, Any]:
        """The store's artifact catalogue (``{"artifacts": [...]}``)."""
        raise NotImplementedError

    async def artifact_get(self, tier: str, key: str
                           ) -> Tuple[bytes, Optional[str]]:
        """One artifact's raw blob bytes; ``(bytes, serving node)``.

        The bytes are the on-disk ``.npz`` container verbatim — the wire
        format IS the store format, so replication and peer-fetch are
        byte-identical by construction.  An absent artifact raises a 404
        :class:`ApiError` with :data:`ERR_NOT_FOUND`.
        """
        raise NotImplementedError

    async def artifact_put(self, tier: str, key: str, data: bytes,
                           reason: str) -> Dict[str, Any]:
        """Ingest one artifact's raw blob bytes; returns the verdict body
        (``{"stored": bool}``)."""
        raise NotImplementedError

    # Dispatch ----------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        """One request in, one response out; library errors → envelopes."""
        try:
            return await self._dispatch(request)
        except ApiError as exc:
            return error_response(exc)
        except InvalidInputError as exc:
            return error_response(ApiError(400, str(exc)))
        except ServiceError as exc:
            # The request was fine; the engine is shutting down — an
            # availability condition, not a client error.
            return error_response(
                ApiError(503, str(exc), retryable=True))
        except ClusterError as exc:
            return error_response(
                ApiError(503, str(exc), retryable=True))

    async def _dispatch(self, request: Request) -> Response:
        parts = [p for p in request.path.split("/") if p]
        if request.method == "GET":
            if parts == ["v1", "healthz"]:
                return json_response(200, await self.healthz())
            if parts == ["v1", "stats"]:
                return await self._encode(200, await self.stats())
            if parts == ["v1", "metrics"]:
                if parse_format_param(request.query) == "json":
                    return await self._encode(200, await self.metrics_json())
                text = await self.metrics_text()
                return Response(200, text.encode(), PROMETHEUS_CONTENT_TYPE)
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                wait = parse_wait_param(request.query)
                body, node = await self.job(parts[2], wait)
                return await self._encode(200, body, node=node)
            if parts == ["v1", "traces"]:
                filters = parse_traces_query(request.query)
                return await self._encode(200, await self.traces(filters))
            if len(parts) == 3 and parts[:2] == ["v1", "traces"]:
                body, node = await self.trace(parts[2])
                return await self._encode(200, body, node=node)
            if parts == ["v1", "profile"]:
                opts = parse_profile_query(request.query)
                doc = await self.profile(opts["seconds"], opts["hz"])
                if opts["format"] == "json":
                    return await self._encode(200, doc)
                text = render_collapsed(doc)
                return Response(200, text.encode(),
                                "text/plain; charset=utf-8")
            if parts == ["v1", "admin", "events"]:
                limit = parse_events_limit(request.query)
                return await self._encode(200, await self.events(limit))
            if parts == ["v1", "artifacts"]:
                return await self._encode(200, await self.artifact_list())
            if len(parts) == 4 and parts[:2] == ["v1", "artifacts"]:
                tier, key = parse_artifact_ref(parts[2], parts[3])
                data, node = await self.artifact_get(tier, key)
                response = Response(200, data, ARTIFACT_CONTENT_TYPE)
                if node:
                    response.headers["X-Repro-Node"] = node
                return response
        elif request.method == "POST":
            if parts == ["v1", "jobs"]:
                if not request.body:
                    raise ApiError(400, "missing or oversized request body")
                data = await asyncio.to_thread(self._decode, request.body)
                accepted, node = await self.submit(
                    data, request.headers.get("x-repro-trace"))
                return json_response(202, accepted, node=node)
            if parts == ["v1", "admin", "flush"]:
                return json_response(
                    200, await self.flush(self._admin_body(request)))
            if parts == ["v1", "admin", "compact"]:
                self._admin_body(request)  # bad admin bodies still 400
                return json_response(200, await self.compact())
            if parts == ["v1", "admin", "dump"]:
                self._admin_body(request)  # bad admin bodies still 400
                return await self._encode(200, await self.dump())
            if len(parts) == 4 and parts[:2] == ["v1", "artifacts"]:
                tier, key = parse_artifact_ref(parts[2], parts[3])
                if not request.body:
                    raise ApiError(400, "missing or oversized request body")
                reason = parse_reason_param(request.query)
                verdict = await self.artifact_put(tier, key, request.body,
                                                  reason)
                return json_response(200, verdict)
        else:
            raise ApiError(405, f"method {request.method} not allowed",
                           code=ERR_NOT_FOUND)
        raise ApiError(404, f"no such endpoint: {request.path}",
                       code=ERR_NOT_FOUND)

    @staticmethod
    def _decode(raw: bytes) -> Any:
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError(400, f"bad JSON body: {exc}")

    def _admin_body(self, request: Request) -> Dict[str, Any]:
        """Decode an optional admin-endpoint JSON body (``{}`` if empty)."""
        if not request.body.strip():
            return {}
        data = self._decode(request.body)
        if not isinstance(data, dict):
            raise ApiError(400, "admin body must be a JSON object")
        return data

    @staticmethod
    async def _encode(status: int, obj: Any,
                      node: Optional[str] = None) -> Response:
        """JSON-encode off the event loop (job payloads can be ~60 MB)."""
        body = await asyncio.to_thread(
            lambda: json.dumps(obj).encode())
        response = Response(status, body)
        if node:
            response.headers["X-Repro-Node"] = node
        return response
