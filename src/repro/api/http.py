"""Asyncio HTTP/1.1 host for a :class:`~repro.api.contract.WireAPI`.

One event loop serves every connection; a ``wait_s=`` long-poll parks an
``asyncio`` task on the engine future (via :func:`asyncio.wrap_future`)
instead of pinning a handler thread, so concurrent waiters scale to the
task budget, not the thread pool — hundreds of long-polls on a 4-worker
engine cost a few KB each.

The host keeps the exact lifecycle facade of the
``ThreadingHTTPServer`` it replaces — ``server_address`` is readable the
moment the constructor returns (the socket binds eagerly, so a busy port
still raises ``OSError`` from ``create_server``), ``serve_forever()``
blocks the calling thread running the loop, ``shutdown()`` is
thread-safe, ``server_close()`` tears everything down — so every
existing call site (tests, CLI, smokes) runs unchanged.

Admission control: at most ``max_inflight`` requests are in the handler
at once; beyond that the host sheds with a retryable ``429`` envelope
and ``Retry-After`` instead of queueing unboundedly.  ``/v1/healthz``
and ``/v1/metrics`` are exempt so probes and scrapes keep answering
under overload (a shed health check would look exactly like a dead
node).  Backends add a second, deeper bound at submit time (the engine's
job queue); this one protects the loop itself.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional, Tuple

import repro
from repro.api.contract import (
    ERR_OVERLOADED,
    ApiError,
    MAX_BODY_BYTES,
    Request,
    Response,
    WireAPI,
    error_response,
    normalize_endpoint,
)

#: Concurrent in-handler requests before the host sheds (per server).
DEFAULT_MAX_INFLIGHT = 1024

#: Endpoints that must keep answering while the host sheds load.
_SHED_EXEMPT = frozenset({"/v1/healthz", "/v1/metrics"})

#: Stream buffer limit — X-Repro-Trace headers carry whole span trees.
_STREAM_LIMIT = 1 << 20

#: Seconds an idle keep-alive connection may sit between requests.
_IDLE_TIMEOUT = 60.0

#: Interval of the event-loop lag probe (when a ``loop_lag`` histogram
#: is attached): long enough to be negligible, short enough that a
#: stalled loop shows up within a scrape interval.
_LAG_PROBE_INTERVAL = 0.25

_PHRASES = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class AsyncHTTPHost:
    """Serve one :class:`WireAPI` on a private asyncio event loop.

    Drop-in lifecycle replacement for ``ThreadingHTTPServer``: construct
    (binds eagerly), ``serve_forever()`` on a thread, ``shutdown()`` +
    ``server_close()`` to stop.
    """

    def __init__(self, api: WireAPI, host: str = "127.0.0.1",
                 port: int = 0, *,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT) -> None:
        self.api = api
        self.max_inflight = max_inflight
        self.node_name: Optional[str] = None
        self.events: Optional[Any] = None
        self.http_latency: Optional[Any] = None
        self.http_requests: Optional[Any] = None
        self.shed_total: Optional[Any] = None
        #: Histogram family for event-loop scheduling lag; attached by
        #: ``create_server`` like the other instruments.  When present,
        #: ``serve_forever()`` runs a periodic probe task that measures
        #: how late ``asyncio.sleep`` wakes — the direct signal that
        #: something is starving the loop (oversized sync work, GC).
        self.loop_lag: Optional[Any] = None
        self.inflight = 0
        self._loop = asyncio.new_event_loop()
        self._running = threading.Event()
        self._stopped = threading.Event()
        self._closed = False
        try:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(self._handle_client, host, port,
                                     limit=_STREAM_LIMIT))
        except BaseException:
            self._loop.close()
            raise
        self.server_address: Tuple[Any, ...] = \
            self._server.sockets[0].getsockname()

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until ``shutdown()``."""
        asyncio.set_event_loop(self._loop)
        self._running.set()
        probe = self._loop.create_task(self._lag_probe()) \
            if self.loop_lag is not None else None
        try:
            self._loop.run_forever()
        finally:
            if probe is not None:
                probe.cancel()
            self._running.clear()
            self._stopped.set()

    async def _lag_probe(self) -> None:
        """Measure how late the loop wakes a periodic sleep."""
        while True:
            expected = self._loop.time() + _LAG_PROBE_INTERVAL
            await asyncio.sleep(_LAG_PROBE_INTERVAL)
            self.loop_lag.observe(max(0.0, self._loop.time() - expected))

    def shutdown(self) -> None:
        """Stop ``serve_forever()`` from any thread (idempotent)."""
        if not self._running.is_set():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._stopped.wait(timeout=30)

    def server_close(self) -> None:
        """Close the listener, drain connection tasks, free the loop."""
        if self._closed:
            return
        self._closed = True
        self.shutdown()
        self._server.close()
        pending = [t for t in asyncio.all_tasks(self._loop) if not t.done()]
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.wait(pending, timeout=5))
        self._loop.run_until_complete(self._server.wait_closed())
        try:
            self._loop.run_until_complete(asyncio.wait_for(
                self._loop.shutdown_default_executor(), timeout=5))
        except (asyncio.TimeoutError, RuntimeError):
            pass
        close = getattr(self.api, "close", None)
        if close is not None:
            close()
        self._loop.close()

    # ----------------------------------------------------------- connection
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                request, fatal = await self._read_request(reader)
                if request is None:
                    if fatal is not None:
                        await self._write_response(writer, fatal)
                    break
                keep_alive = self._keep_alive(request)
                response = await self._respond(request, client)
                response.close = response.close or not keep_alive
                await self._write_response(writer, response)
                if response.close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[Optional[Request],
                                       Optional[Response]]:
        """One request off the stream, or ``(None, error-to-send|None)``."""
        try:
            line = await asyncio.wait_for(reader.readline(), _IDLE_TIMEOUT)
        except asyncio.TimeoutError:
            return None, None  # idle keep-alive connection; just close
        except ValueError:
            return None, self._fatal_400("request line too long")
        if not line.strip():
            return None, None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None, self._fatal_400("malformed request line")
        headers = {}
        while True:
            try:
                raw = await reader.readline()
            except ValueError:
                return None, self._fatal_400("header line too long")
            if raw in (b"\r\n", b"\n", b""):
                break
            try:
                name, _, value = raw.decode("latin-1").partition(":")
            except ValueError:
                return None, self._fatal_400("malformed header")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # Can't resync the stream past a body we refuse to read.
            return None, self._fatal_400(
                "bad Content-Length" if length < 0
                else "missing or oversized request body")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return Request(method=method, path=path, query=query,
                       headers=headers, body=body), None

    @staticmethod
    def _fatal_400(message: str) -> Response:
        response = error_response(ApiError(400, message))
        response.close = True
        return response

    @staticmethod
    def _keep_alive(request: Request) -> bool:
        return request.headers.get("connection", "").lower() != "close"

    # ------------------------------------------------------------- dispatch
    async def _respond(self, request: Request, client: str) -> Response:
        endpoint = normalize_endpoint(request.path)
        started = self._loop.time()
        if self.inflight >= self.max_inflight and endpoint not in _SHED_EXEMPT:
            response = error_response(ApiError(
                429, f"server at capacity ({self.max_inflight} requests "
                     f"in flight); retry shortly",
                code=ERR_OVERLOADED, retryable=True, retry_after=1))
        else:
            self.inflight += 1
            try:
                response = await self.api.handle(request)
            except Exception as exc:  # the envelope, even for surprises
                response = error_response(ApiError(500, str(exc)))
            finally:
                self.inflight -= 1
        if response.status == 429 and self.shed_total is not None:
            # Both shed layers (transport inflight cap, backend admission
            # queue) land here, so the counter covers every 429 served.
            self.shed_total.inc(endpoint=endpoint)
        if self.node_name and "X-Repro-Node" not in response.headers:
            response.headers["X-Repro-Node"] = self.node_name
        if self.http_latency is not None:
            self.http_latency.observe(self._loop.time() - started,
                                      endpoint=endpoint)
            self.http_requests.inc(endpoint=endpoint,
                                   code=str(response.status))
        if self.events is not None:
            self.events.emit("http_access", method=request.method,
                             path=request.target, code=response.status,
                             client=client)
        return response

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: Response) -> None:
        phrase = _PHRASES.get(response.status, "Unknown")
        head = [f"HTTP/1.1 {response.status} {phrase}",
                f"Server: repro-service/{repro.__version__}",
                f"Content-Type: {response.content_type}",
                f"Content-Length: {len(response.body)}"]
        head += [f"{name}: {value}"
                 for name, value in response.headers.items()]
        if response.close:
            head.append("Connection: close")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n")
        writer.write(response.body)
        await writer.drain()
