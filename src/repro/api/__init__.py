"""Shared ``/v1`` wire-API layer: contract, asyncio host, async client.

The contract (:mod:`repro.api.contract`) owns the route table, request
validation, the uniform error envelope and the ``X-Repro-*`` headers;
the host (:mod:`repro.api.http`) serves any :class:`WireAPI` backend on
one asyncio event loop with bounded admission.  The node front end
(:mod:`repro.service.server`) and the router front end
(:mod:`repro.cluster.server`) are thin backends over this package.
"""

from repro.api.contract import (
    ApiError,
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_NOT_FOUND,
    ERR_OVERLOADED,
    ERR_UNAVAILABLE,
    ERR_UNKNOWN_JOB,
    ERR_UPSTREAM,
    MAX_BODY_BYTES,
    MAX_WAIT_SECONDS,
    PROMETHEUS_CONTENT_TYPE,
    Request,
    Response,
    WireAPI,
    error_envelope,
    parse_error_envelope,
    parse_format_param,
    parse_wait_param,
)
from repro.api.http import AsyncHTTPHost, DEFAULT_MAX_INFLIGHT

__all__ = [
    "ApiError",
    "AsyncHTTPHost",
    "DEFAULT_MAX_INFLIGHT",
    "ERR_BAD_REQUEST",
    "ERR_INTERNAL",
    "ERR_NOT_FOUND",
    "ERR_OVERLOADED",
    "ERR_UNAVAILABLE",
    "ERR_UNKNOWN_JOB",
    "ERR_UPSTREAM",
    "MAX_BODY_BYTES",
    "MAX_WAIT_SECONDS",
    "PROMETHEUS_CONTENT_TYPE",
    "Request",
    "Response",
    "WireAPI",
    "error_envelope",
    "parse_error_envelope",
    "parse_format_param",
    "parse_wait_param",
]
