"""Tiny asyncio HTTP client for ``/v1`` (one connection per request).

Just enough transport for the open-loop load harness and the long-poll
concurrency tests: hundreds of concurrent requests from one thread, no
connection pooling (each request opens, sends ``Connection: close``, and
reads to EOF or Content-Length).  Production clients use the blocking
:class:`repro.client.Client`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse


async def request(base_url: str, path: str, *, method: str = "GET",
                  body: Optional[bytes] = None,
                  headers: Optional[Dict[str, str]] = None,
                  timeout: float = 90.0
                  ) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP exchange; returns ``(status, headers, body bytes)``."""
    parsed = urlparse(base_url)
    host, port = parsed.hostname, parsed.port or 80
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port, limit=1 << 20), timeout)
    try:
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        if body is not None:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        writer.write("\r\n".join(head).encode() + b"\r\n\r\n")
        if body is not None:
            writer.write(body)
        await asyncio.wait_for(writer.drain(), timeout)

        status_line = await asyncio.wait_for(reader.readline(), timeout)
        status = int(status_line.split()[1])
        response_headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line.strip():
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", -1))
        if length >= 0:
            payload = await asyncio.wait_for(
                reader.readexactly(length), timeout)
        else:
            payload = await asyncio.wait_for(reader.read(), timeout)
        return status, response_headers, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def request_json(base_url: str, path: str, *, method: str = "GET",
                       data: Optional[Any] = None,
                       headers: Optional[Dict[str, str]] = None,
                       timeout: float = 90.0
                       ) -> Tuple[int, Dict[str, str], Any]:
    """Like :func:`request`, JSON in / JSON out."""
    body = json.dumps(data).encode() if data is not None else None
    status, response_headers, payload = await request(
        base_url, path, method=method, body=body, headers=headers,
        timeout=timeout)
    return status, response_headers, json.loads(payload) if payload else None
