"""Simulated device specifications.

Each :class:`DeviceSpec` holds the throughput constants used by
:func:`repro.kokkos.costmodel.simulate_seconds` to convert device-independent
:class:`~repro.kokkos.counters.CostCounters` into simulated seconds.

The presets model the paper's testbed:

* ``EPYC_7763_SEQ``  — one core of the AMD EPYC 7763 (sequential baseline).
* ``EPYC_7763_MT``   — all 64 cores.  Mirrors the paper's known limitation
  that the multithreaded sort is serial (``std::sort`` replaced
  ``Kokkos::BinSort``, Section 4.2), via ``serial_sort=True``.
* ``A100``           — Nvidia A100 (108 SMs, warp width 32).
* ``MI250X_GCD``     — a single Graphics Compute Die of an AMD MI250X, which
  the paper treats as an independent GPU.

Throughput constants are *calibrated*, not measured: they are chosen once so
that the simulated rates for the Hacc-like reference workload land near the
paper's published MFeatures/sec (Figure 1), and then held fixed for every
other experiment.  All cross-dataset and cross-algorithm *shape* therefore
comes from the measured counters, not from per-experiment tuning.  The
calibration procedure is documented in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DeviceSpec:
    """Constants describing a simulated execution resource.

    Parameters
    ----------
    name:
        Display name used in benchmark tables.
    kind:
        ``"cpu"`` or ``"gpu"``.  GPUs apply the measured warp-divergence
        factor to traversal work; CPUs do not.
    parallel_units:
        Cores (CPU) or SMs/CUs (GPU); informational, folded into
        ``peak_ops_per_sec``.
    peak_ops_per_sec:
        Aggregate throughput for weighted algorithmic operations
        (see :func:`repro.kokkos.costmodel.weighted_ops`).
    sort_rate:
        Throughput of sorting in ``elements * log2(elements)`` units/sec.
    serial_sort:
        If True, sorting does not parallelize on this device (the paper's
        multithreaded ``std::sort`` limitation).
    serial_sort_rate:
        Sort throughput used when ``serial_sort`` is set.
    mem_bandwidth:
        Main-memory bandwidth in bytes/sec, applied to ``bytes_moved``.
    launch_overhead:
        Fixed seconds per kernel launch (dominates small problems on GPUs,
        reproducing the RoadNetwork3D "too small to saturate" effect).
    half_saturation_batch:
        Batch width at which the device reaches half of peak throughput;
        0 disables the saturation model (sequential CPU).
    """

    name: str
    kind: str
    parallel_units: int
    peak_ops_per_sec: float
    sort_rate: float
    serial_sort: bool = False
    serial_sort_rate: float = 2.5e8
    mem_bandwidth: float = 2.0e10
    launch_overhead: float = 0.0
    half_saturation_batch: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ValueError(f"unknown device kind: {self.kind!r}")
        if self.peak_ops_per_sec <= 0 or self.sort_rate <= 0:
            raise ValueError("throughput constants must be positive")

    def saturation(self, batch: float) -> float:
        """Fraction of peak throughput achieved at data-parallel width ``batch``.

        A smooth ``batch / (batch + half_saturation_batch)`` curve: small
        problems under-utilize wide devices (paper Figure 7), large problems
        approach peak.  Returns 1.0 when saturation modelling is disabled.
        """
        if self.half_saturation_batch <= 0:
            return 1.0
        batch = max(float(batch), 1.0)
        return batch / (batch + self.half_saturation_batch)


# Calibrated against Figure 1 (Hacc37M): ArborX 0.8 seq / 17.1 MT /
# 270.7 A100 / 180.3 MI250X MFeatures/sec, with the reference workload
# being the Hacc generator at n=30,000 (the repository's scaled-down
# stand-in for Hacc37M).  Saturation half-widths are likewise scaled to
# the 10^4-10^5 regime this repository operates in, preserving the
# *shape* of the paper's Figure 7 (rates rise with n, then plateau).
# The calibration solver lives in tools/calibrate_cost_model.py; see
# EXPERIMENTS.md for the procedure and solved values.
EPYC_7763_SEQ = DeviceSpec(
    name="AMD-EPYC-7763 (1 core)",
    kind="cpu",
    parallel_units=1,
    peak_ops_per_sec=2.251e9,
    sort_rate=2.5e8,
)

EPYC_7763_MT = DeviceSpec(
    name="AMD-EPYC-7763 (64 cores)",
    kind="cpu",
    parallel_units=64,
    peak_ops_per_sec=9.204e10,
    sort_rate=8.0e9,
    serial_sort=True,
    serial_sort_rate=6.0e8,
    mem_bandwidth=2.0e11,
    launch_overhead=4.0e-6,
    half_saturation_batch=3.0e2,
)

A100 = DeviceSpec(
    name="Nvidia-A100",
    kind="gpu",
    parallel_units=108,
    peak_ops_per_sec=2.322e12,
    sort_rate=2.0e10,
    mem_bandwidth=1.5e12,
    launch_overhead=1.0e-6,
    half_saturation_batch=4.0e3,
)

MI250X_GCD = DeviceSpec(
    name="AMD-MI250X (1 GCD)",
    kind="gpu",
    parallel_units=110,
    peak_ops_per_sec=1.603e12,
    sort_rate=1.3e10,
    mem_bandwidth=1.3e12,
    launch_overhead=1.5e-6,
    half_saturation_batch=5.0e3,
)


def device_registry() -> Dict[str, DeviceSpec]:
    """Name → preset mapping for benchmark drivers."""
    return {
        "epyc-seq": EPYC_7763_SEQ,
        "epyc-mt": EPYC_7763_MT,
        "a100": A100,
        "mi250x": MI250X_GCD,
    }
