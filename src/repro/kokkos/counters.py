"""Device-independent work counters for instrumented kernels.

Every performance-relevant kernel in this repository reports the work it
performs into a :class:`CostCounters` instance.  The counters deliberately
measure *algorithmic* quantities (how many point-point distances were
evaluated, how many BVH nodes were popped, how many SIMT warp-steps a batched
traversal needed) rather than Python-level costs, so the same run can be
replayed under several :class:`~repro.kokkos.devices.DeviceSpec` cost models.

The split between ``lane_steps`` and ``warp_steps`` captures SIMT divergence:
``lane_steps`` is the sum over query lanes of the number of traversal
iterations each lane was active for (ideal work), while ``warp_steps`` groups
lanes into warps of :data:`WARP_SIZE` and charges every iteration in which
*any* lane of the warp is active (what a GPU actually executes).  Their ratio
is the divergence penalty the paper alludes to when discussing priority-queue
thread divergence in Section 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable

import numpy as np

#: SIMT width used for divergence accounting (CUDA warp / half a CDNA wave).
WARP_SIZE = 32


@dataclass
class CostCounters:
    """Accumulated work of one or more kernels.

    All fields are additive; :meth:`add` merges two counter sets.  Fields:

    ``distance_evals``
        Point-point (squared) distance computations.
    ``box_distance_evals``
        Point-AABB lower-bound distance computations.
    ``nodes_visited``
        BVH/kd-tree nodes popped and examined during traversals.
    ``leaf_visits``
        Leaf nodes whose payload was examined.
    ``stack_ops``
        Pushes+pops on traversal stacks.
    ``lane_steps``
        Per-lane active traversal iterations (ideal SIMT work).
    ``warp_steps``
        Warp-granular traversal iterations (divergence-aware SIMT work).
    ``scalar_ops``
        Miscellaneous arithmetic attributed to bulk array passes.
    ``sort_elements``
        Elements passed through a sort (Morton sort, Kruskal edge sort, ...).
    ``bytes_moved``
        Estimated bytes of main-memory traffic.
    ``kernel_launches``
        Number of device kernels an equivalent GPU implementation launches.
    ``max_batch``
        Width of the widest data-parallel kernel (saturation modelling).
    """

    distance_evals: int = 0
    box_distance_evals: int = 0
    nodes_visited: int = 0
    leaf_visits: int = 0
    stack_ops: int = 0
    lane_steps: int = 0
    warp_steps: int = 0
    scalar_ops: int = 0
    sort_elements: int = 0
    bytes_moved: int = 0
    kernel_launches: int = 0
    max_batch: int = 0

    def add(self, other: "CostCounters") -> "CostCounters":
        """In-place accumulate ``other`` into ``self`` and return ``self``."""
        for f in fields(self):
            if f.name == "max_batch":
                self.max_batch = max(self.max_batch, other.max_batch)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "CostCounters":
        """An independent copy of this counter set."""
        out = CostCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name))
        return out

    def scaled(self, factor: float) -> "CostCounters":
        """A copy with all additive work multiplied by ``factor``.

        ``max_batch`` (a width, not an amount of work) and
        ``kernel_launches`` (a count of dispatches) are left unscaled.
        Used by the benchmark harness to apply per-algorithm calibration
        constants (see ``EXPERIMENTS.md``): different algorithms have
        different real-world cycles-per-counted-op, calibrated once on the
        reference workload and held fixed everywhere else.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        out = self.copy()
        for f in fields(self):
            if f.name in ("max_batch", "kernel_launches"):
                continue
            setattr(out, f.name, int(getattr(self, f.name) * factor))
        return out

    def as_dict(self) -> Dict[str, int]:
        """Counter values keyed by field name."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def summed(cls, dicts: Iterable[Dict[str, int]]) -> "CostCounters":
        """Accumulate several :meth:`as_dict` forms into one counter set.

        Job payloads carry per-phase counter dicts (``tree``/``core``/
        ``mst``); tracing attaches their total to the executed span, so
        a trace shows the whole job's work profile at a glance.  Unknown
        keys are ignored (forward compatibility with payloads produced
        by newer counter schemas).
        """
        known = {f.name for f in fields(cls)}
        total = cls()
        for data in dicts:
            total.add(cls(**{k: v for k, v in data.items() if k in known}))
        return total

    @property
    def divergence_factor(self) -> float:
        """``warp_steps * WARP_SIZE / lane_steps`` — 1.0 means no divergence.

        Returns 1.0 when no traversal work has been recorded.
        """
        if self.lane_steps == 0:
            return 1.0
        return (self.warp_steps * WARP_SIZE) / self.lane_steps

    def record_bulk(self, n_items: int, ops_per_item: float = 1.0,
                    bytes_per_item: float = 0.0) -> None:
        """Record one flat data-parallel pass over ``n_items`` items."""
        if n_items < 0:
            raise ValueError(f"negative item count: {n_items}")
        self.scalar_ops += int(n_items * ops_per_item)
        self.bytes_moved += int(n_items * bytes_per_item)
        self.kernel_launches += 1
        self.max_batch = max(self.max_batch, n_items)

    def record_sort(self, n_items: int, bytes_per_item: float = 8.0) -> None:
        """Record sorting ``n_items`` elements (cost model applies n log n)."""
        if n_items < 0:
            raise ValueError(f"negative item count: {n_items}")
        self.sort_elements += n_items
        self.bytes_moved += int(n_items * bytes_per_item)
        self.kernel_launches += 1
        self.max_batch = max(self.max_batch, n_items)


@dataclass
class WarpTrace:
    """Accumulates SIMT activity of a batched traversal kernel.

    The batched traversal loop calls :meth:`step` once per iteration with the
    boolean activity mask over lanes; lanes are grouped into consecutive
    warps of :data:`WARP_SIZE` (queries are Morton-presorted, matching the
    ArborX strategy of assigning geometrically close queries to neighbouring
    threads).  :meth:`flush` folds the totals into a :class:`CostCounters`.
    """

    lane_steps: int = 0
    warp_steps: int = 0
    _pad_cache: Dict[int, int] = field(default_factory=dict, repr=False)

    def step(self, active: np.ndarray) -> None:
        """Record one traversal iteration with per-lane ``active`` mask."""
        n = active.shape[0]
        n_active = int(np.count_nonzero(active))
        if n_active == 0:
            return
        self.lane_steps += n_active
        pad = self._pad_cache.get(n)
        if pad is None:
            pad = (WARP_SIZE - n % WARP_SIZE) % WARP_SIZE
            self._pad_cache[n] = pad
        if pad:
            padded = np.zeros(n + pad, dtype=bool)
            padded[:n] = active
        else:
            padded = active
        warps = padded.reshape(-1, WARP_SIZE)
        self.warp_steps += int(np.count_nonzero(warps.any(axis=1)))

    def step_lanes(self, lanes: np.ndarray) -> None:
        """Record one iteration from the *sorted active lane list* directly.

        Equivalent to :meth:`step` on the corresponding boolean mask — a
        warp is charged iff any of its lanes appears — but costs
        ``O(active)`` instead of ``O(batch)``, which is what makes the
        wavefront kernels' traversal tail cheap to account.
        """
        n_active = lanes.size
        if n_active == 0:
            return
        self.lane_steps += n_active
        warp_of = lanes // WARP_SIZE
        self.warp_steps += 1 + int(np.count_nonzero(warp_of[1:]
                                                    != warp_of[:-1]))

    def flush(self, counters: CostCounters) -> None:
        """Add accumulated steps into ``counters`` and reset the trace."""
        counters.lane_steps += self.lane_steps
        counters.warp_steps += self.warp_steps
        self.lane_steps = 0
        self.warp_steps = 0
