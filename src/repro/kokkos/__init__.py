"""Kokkos-like performance-portability layer with simulated devices.

The paper implements its EMST on top of `Kokkos <https://github.com/kokkos/kokkos>`_
(execution/memory-space abstractions, ``parallel_for/reduce/scan`` patterns)
and runs the same source on an AMD EPYC 7763 CPU, an Nvidia A100 GPU, and an
AMD MI250X GPU.  This repository has no GPU, so the portability layer is
reproduced as follows:

* Kernels are executed as **data-parallel batched NumPy operations**; every
  kernel reports the work it performed (distance evaluations, tree-node
  visits, SIMT warp steps including divergence, bytes moved, elements
  sorted) into a :class:`~repro.kokkos.counters.CostCounters` object.  The
  counters are *device-independent measurements of algorithmic work* — the
  same quantities the real kernels would issue on any backend.
* A :class:`~repro.kokkos.devices.DeviceSpec` (presets for EPYC 7763
  sequential/multithreaded, A100, and an MI250X GCD) converts counters into
  simulated seconds via :func:`~repro.kokkos.costmodel.simulate_seconds`.
  Device constants are calibrated against the paper's published rates; see
  ``EXPERIMENTS.md``.

The package also provides semantic ``parallel_for/reduce/scan`` patterns and
a ``View`` memory-space abstraction mirroring the Kokkos API so that the
algorithm drivers in :mod:`repro.core` read like the paper's Figure 3.
"""

from repro.kokkos.counters import CostCounters, WarpTrace
from repro.kokkos.devices import (
    A100,
    EPYC_7763_MT,
    EPYC_7763_SEQ,
    MI250X_GCD,
    DeviceSpec,
    device_registry,
)
from repro.kokkos.costmodel import CostBreakdown, simulate_seconds
from repro.kokkos.spaces import (
    ExecutionSpace,
    GPUSim,
    OpenMPSim,
    Serial,
    default_space,
)
from repro.kokkos.patterns import parallel_for, parallel_reduce, parallel_scan
from repro.kokkos.views import View, create_mirror_view, deep_copy

__all__ = [
    "CostCounters",
    "WarpTrace",
    "DeviceSpec",
    "EPYC_7763_SEQ",
    "EPYC_7763_MT",
    "A100",
    "MI250X_GCD",
    "device_registry",
    "CostBreakdown",
    "simulate_seconds",
    "ExecutionSpace",
    "Serial",
    "OpenMPSim",
    "GPUSim",
    "default_space",
    "parallel_for",
    "parallel_reduce",
    "parallel_scan",
    "View",
    "create_mirror_view",
    "deep_copy",
]
