"""Kokkos-style parallel execution patterns.

``parallel_for``, ``parallel_reduce`` and ``parallel_scan`` mirror the Kokkos
dispatch API used in the paper's Figure 3.  Semantically they execute a
Python callable over an index range; for performance-critical code the
library uses batched NumPy kernels directly, but these patterns are used by
the small-scale drivers, by tests, and wherever API parity with the paper's
listing makes the code easier to compare against the original.

Each dispatch records its work into an optional
:class:`~repro.kokkos.counters.CostCounters` so that even the pattern-based
code paths participate in the cost model.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TypeVar

import numpy as np

from repro.kokkos.counters import CostCounters

T = TypeVar("T")


def parallel_for(
    n: int,
    body: Callable[[int], None],
    *,
    counters: Optional[CostCounters] = None,
    ops_per_item: float = 1.0,
) -> None:
    """Execute ``body(i)`` for every ``i`` in ``range(n)``.

    The iterations must be independent (as in Kokkos); the sequential
    execution order here is an implementation detail that correct kernels
    may not rely on.
    """
    if n < 0:
        raise ValueError(f"negative range: {n}")
    for i in range(n):
        body(i)
    if counters is not None:
        counters.record_bulk(n, ops_per_item=ops_per_item)


def parallel_reduce(
    n: int,
    body: Callable[[int], T],
    combine: Callable[[T, T], T],
    init: T,
    *,
    counters: Optional[CostCounters] = None,
    ops_per_item: float = 1.0,
) -> T:
    """Reduce ``combine(acc, body(i))`` over ``range(n)`` starting at ``init``.

    ``combine`` must be associative and commutative for the result to be
    execution-order independent, matching the Kokkos contract.
    """
    if n < 0:
        raise ValueError(f"negative range: {n}")
    acc = init
    for i in range(n):
        acc = combine(acc, body(i))
    if counters is not None:
        counters.record_bulk(n, ops_per_item=ops_per_item)
    return acc


def parallel_scan(
    values: np.ndarray,
    *,
    exclusive: bool = True,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Prefix sum of ``values`` (exclusive by default, as in Kokkos).

    >>> parallel_scan(np.array([1, 2, 3]))
    array([0, 1, 3])
    >>> parallel_scan(np.array([1, 2, 3]), exclusive=False)
    array([1, 3, 6])
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("parallel_scan expects a 1-D array")
    inclusive = np.cumsum(values)
    if counters is not None:
        counters.record_bulk(values.shape[0], ops_per_item=2.0,
                             bytes_per_item=2 * values.itemsize)
    if exclusive:
        out = np.empty_like(inclusive)
        out[0] = 0
        out[1:] = inclusive[:-1]
        return out
    return inclusive


def fused_map(
    arrays: List[np.ndarray],
    fn: Callable[..., np.ndarray],
    *,
    counters: Optional[CostCounters] = None,
    ops_per_item: float = 1.0,
) -> np.ndarray:
    """Apply a vectorized ``fn`` over aligned arrays, recording bulk work.

    This is the bridge the heavy kernels use: the computation is a single
    NumPy expression, and the dispatch is accounted as one device kernel over
    ``len(arrays[0])`` items.
    """
    if not arrays:
        raise ValueError("fused_map requires at least one input array")
    n = arrays[0].shape[0]
    for a in arrays[1:]:
        if a.shape[0] != n:
            raise ValueError("fused_map inputs must share their leading dim")
    out = fn(*arrays)
    if counters is not None:
        bytes_per_item = float(sum(a.itemsize * (a.size // max(n, 1)) for a in arrays))
        counters.record_bulk(n, ops_per_item=ops_per_item,
                             bytes_per_item=bytes_per_item)
    return out
