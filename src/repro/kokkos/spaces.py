"""Execution spaces: where a kernel (conceptually) runs.

Mirrors Kokkos' execution-space concept: an algorithm is written once against
the :class:`ExecutionSpace` interface and can be "run" on the sequential CPU
model, the multithreaded CPU model, or a GPU model.  In this reproduction all
kernels physically execute as NumPy array programs; the execution space
determines how the recorded work counters are converted into simulated time
(see :mod:`repro.kokkos.costmodel`) and how wide the SIMT warp grouping is.

Because the counters are device-independent, a single physical run can be
re-priced on every device — benchmark drivers exploit this to produce the
paper's cross-device figures from one execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionSpaceError
from repro.kokkos.costmodel import CostBreakdown, simulate_seconds
from repro.kokkos.counters import WARP_SIZE, CostCounters
from repro.kokkos.devices import A100, EPYC_7763_MT, EPYC_7763_SEQ, DeviceSpec


@dataclass(frozen=True)
class ExecutionSpace:
    """An execution resource with a cost model.

    Concrete spaces are :class:`Serial`, :class:`OpenMPSim` and
    :class:`GPUSim`; all are thin wrappers selecting a
    :class:`~repro.kokkos.devices.DeviceSpec`.
    """

    device: DeviceSpec

    @property
    def name(self) -> str:
        """Display name of the underlying device."""
        return self.device.name

    @property
    def is_gpu(self) -> bool:
        """True for SIMT (GPU) spaces."""
        return self.device.kind == "gpu"

    @property
    def warp_size(self) -> int:
        """SIMT width for divergence accounting (1 on CPUs)."""
        return WARP_SIZE if self.is_gpu else 1

    def simulate(self, counters: CostCounters) -> CostBreakdown:
        """Price ``counters`` on this space's device."""
        return simulate_seconds(counters, self.device)

    def fence(self) -> None:
        """No-op barrier, mirroring ``ExecutionSpace::fence()`` in Kokkos."""


class Serial(ExecutionSpace):
    """Single-core CPU execution (Kokkos ``Serial`` backend)."""

    def __init__(self, device: DeviceSpec = EPYC_7763_SEQ):
        if device.kind != "cpu":
            raise ExecutionSpaceError("Serial space requires a CPU device")
        super().__init__(device)


class OpenMPSim(ExecutionSpace):
    """Multithreaded CPU execution (Kokkos ``OpenMP`` backend, simulated)."""

    def __init__(self, device: DeviceSpec = EPYC_7763_MT):
        if device.kind != "cpu":
            raise ExecutionSpaceError("OpenMPSim space requires a CPU device")
        super().__init__(device)


class GPUSim(ExecutionSpace):
    """SIMT GPU execution (Kokkos ``Cuda``/``HIP`` backend, simulated)."""

    def __init__(self, device: DeviceSpec = A100):
        if device.kind != "gpu":
            raise ExecutionSpaceError("GPUSim space requires a GPU device")
        super().__init__(device)


def default_space() -> ExecutionSpace:
    """The library default: sequential CPU (cheapest, no assumptions)."""
    return Serial()
