"""Cost model converting work counters into simulated seconds per device.

The model is intentionally simple and fully documented so that every
simulated number in the benchmark output can be traced back to measured
algorithmic work:

``time = launches * overhead  +  traversal / (peak * sat)  +  sort  +  mem``

* *Traversal/compute work* is a weighted sum of the counters (weights in
  :data:`OP_WEIGHTS` approximate relative instruction counts of each
  operation in the real kernels).  On GPUs the traversal portion is
  multiplied by the measured warp-divergence factor — warps execute the
  union of their lanes' control flow.
* *Saturation* reduces effective throughput for batches too small to fill
  the device (:meth:`repro.kokkos.devices.DeviceSpec.saturation`).
* *Sorting* costs ``elements * log2(elements) / sort_rate``, charged at the
  serial rate when the device's sort does not parallelize (the paper's
  multithreaded ``std::sort`` limitation).
* *Memory traffic* is charged against device bandwidth; compute and memory
  are summed (a pessimistic no-overlap assumption that affects all devices
  equally).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.kokkos.counters import CostCounters
from repro.kokkos.devices import DeviceSpec

#: Relative instruction-cost weights of the counted operations.
OP_WEIGHTS: Dict[str, float] = {
    "distance_evals": 8.0,
    "box_distance_evals": 12.0,
    "nodes_visited": 6.0,
    "leaf_visits": 3.0,
    "stack_ops": 2.0,
    "scalar_ops": 1.0,
}

#: Counters considered traversal work (subject to the divergence factor).
TRAVERSAL_FIELDS = (
    "distance_evals",
    "box_distance_evals",
    "nodes_visited",
    "leaf_visits",
    "stack_ops",
)


def weighted_ops(counters: CostCounters) -> float:
    """Total weighted operation count of ``counters`` (device-independent)."""
    return sum(OP_WEIGHTS[name] * getattr(counters, name) for name in OP_WEIGHTS)


def traversal_ops(counters: CostCounters) -> float:
    """The traversal-kernel portion of :func:`weighted_ops`."""
    return sum(OP_WEIGHTS[name] * getattr(counters, name) for name in TRAVERSAL_FIELDS)


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated time of one counter set on one device, by component."""

    device: str
    compute_seconds: float
    sort_seconds: float
    memory_seconds: float
    launch_seconds: float

    @property
    def seconds(self) -> float:
        """Total simulated seconds."""
        return (self.compute_seconds + self.sort_seconds
                + self.memory_seconds + self.launch_seconds)


def simulate_seconds(counters: CostCounters, device: DeviceSpec) -> CostBreakdown:
    """Simulated execution time of the work in ``counters`` on ``device``."""
    total = weighted_ops(counters)
    trav = traversal_ops(counters)
    flat = total - trav

    if device.kind == "gpu":
        # Warps execute the union of their lanes' control flow.
        trav = trav * counters.divergence_factor

    sat = device.saturation(counters.max_batch)
    compute = (trav + flat) / (device.peak_ops_per_sec * sat)

    sort_seconds = 0.0
    if counters.sort_elements > 0:
        n = counters.sort_elements
        work = n * math.log2(max(n, 2))
        rate = device.serial_sort_rate if device.serial_sort else device.sort_rate
        if not device.serial_sort:
            rate = rate * sat
        sort_seconds = work / rate

    memory = counters.bytes_moved / device.mem_bandwidth
    launch = counters.kernel_launches * device.launch_overhead
    return CostBreakdown(
        device=device.name,
        compute_seconds=compute,
        sort_seconds=sort_seconds,
        memory_seconds=memory,
        launch_seconds=launch,
    )


def simulate_phases(
    phase_counters: Mapping[str, CostCounters], device: DeviceSpec
) -> Dict[str, float]:
    """Simulated seconds per named phase (for Figure-8 style breakdowns)."""
    return {
        name: simulate_seconds(counters, device).seconds
        for name, counters in phase_counters.items()
    }
