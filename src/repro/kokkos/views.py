"""Kokkos ``View`` analogue: arrays tagged with a memory space.

Kokkos code must place data in a memory space accessible from the execution
space, inserting explicit host/device transfers otherwise (Section 2 of the
paper).  :class:`View` wraps a NumPy array with a memory-space label and a
name; :func:`deep_copy` moves data between spaces and charges the transfer to
a counter set, so that algorithms that forget to keep data device-resident
pay a (simulated) PCIe cost — the same discipline real Kokkos enforces at
compile time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ExecutionSpaceError
from repro.kokkos.counters import CostCounters

HOST_SPACE = "Host"
DEVICE_SPACE = "Device"
_VALID_SPACES = (HOST_SPACE, DEVICE_SPACE)


class View:
    """A labelled, memory-space-tagged array.

    Mirrors ``Kokkos::View<T*, MemorySpace>``: construction either allocates
    (``View("labels", n, dtype=...)``) or wraps an existing array
    (``View.wrap("data", array)``).  The underlying buffer is exposed as
    ``.data``; kernels operate on it directly.
    """

    def __init__(self, label: str, shape, dtype=np.float64,
                 space: str = HOST_SPACE):
        if space not in _VALID_SPACES:
            raise ExecutionSpaceError(f"unknown memory space: {space!r}")
        self.label = label
        self.space = space
        self.data = np.zeros(shape, dtype=dtype)

    @classmethod
    def wrap(cls, label: str, array: np.ndarray, space: str = HOST_SPACE) -> "View":
        """Wrap ``array`` without copying."""
        view = cls.__new__(cls)
        if space not in _VALID_SPACES:
            raise ExecutionSpaceError(f"unknown memory space: {space!r}")
        view.label = label
        view.space = space
        view.data = np.asarray(array)
        return view

    @property
    def shape(self):
        """Shape of the underlying buffer."""
        return self.data.shape

    @property
    def dtype(self):
        """Dtype of the underlying buffer."""
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Size of the underlying buffer in bytes."""
        return self.data.nbytes

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        return (f"View({self.label!r}, shape={self.data.shape}, "
                f"dtype={self.data.dtype}, space={self.space})")


def create_mirror_view(view: View) -> View:
    """Allocate a host-space view with the same shape/dtype as ``view``.

    As in Kokkos, the mirror starts uninitialized (here: zeroed) and must be
    filled with :func:`deep_copy`.
    """
    mirror = View(view.label + "_mirror", view.data.shape, dtype=view.data.dtype,
                  space=HOST_SPACE)
    return mirror


def deep_copy(dst: View, src: View,
              counters: Optional[CostCounters] = None) -> None:
    """Copy ``src`` into ``dst``, charging a transfer when spaces differ."""
    if dst.data.shape != src.data.shape:
        raise ExecutionSpaceError(
            f"deep_copy shape mismatch: {dst.data.shape} vs {src.data.shape}")
    np.copyto(dst.data, src.data)
    if counters is not None:
        counters.bytes_moved += src.nbytes
        if dst.space != src.space:
            # Host<->device transfers also pay a launch-like latency.
            counters.kernel_launches += 1
