"""Spatial index substrate for the CPU baselines.

* :mod:`repro.spatial.kdtree` — median-split kd-tree (array-of-nodes
  layout), used by the Bentley–Friedman and dual-tree Borůvka baselines.
* :mod:`repro.spatial.fairsplit` — Callahan–Kosaraju fair-split tree, the
  decomposition underlying the WSPD.
* :mod:`repro.spatial.wspd` — well-separated pair decomposition.
* :mod:`repro.spatial.bcp` — bichromatic closest pair between two subtrees.
"""

from repro.spatial.kdtree import KDTree, build_kdtree
from repro.spatial.fairsplit import FairSplitTree, build_fair_split_tree
from repro.spatial.wspd import WSPDPair, well_separated_pairs
from repro.spatial.bcp import bichromatic_closest_pair

__all__ = [
    "KDTree",
    "build_kdtree",
    "FairSplitTree",
    "build_fair_split_tree",
    "WSPDPair",
    "well_separated_pairs",
    "bichromatic_closest_pair",
]
