"""Bichromatic closest pair between two subtrees.

Given two nodes of a spatial tree, find the closest pair with one endpoint
in each — the primitive the WSPD-based EMST executes per well-separated
pair (Agarwal et al. 1991, Narasimhan et al. 2000).  Classic dual-tree
branch and bound: recurse into child pairs nearest first, prune pairs whose
box gap exceeds the best found.

The optional ``component_of`` argument restricts the search to
cross-component pairs (used by tests and by MemoGFK variants that re-run a
BCP after a merge); ``core_sq`` switches the metric to mutual reachability.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.distance import box_box_sq
from repro.kokkos.counters import CostCounters


def bichromatic_closest_pair(
    tree,
    node_a: int,
    node_b: int,
    *,
    component_of: Optional[np.ndarray] = None,
    core_sq: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
) -> Tuple[int, int, float]:
    """Closest pair ``(i, j, d_sq)`` with ``i`` under ``node_a``, ``j``
    under ``node_b``.

    ``tree`` is any flat tree with the ``lo/hi/left/right/node_indices``
    interface (:class:`~repro.spatial.kdtree.KDTree` or
    :class:`~repro.spatial.fairsplit.FairSplitTree`).  When
    ``component_of`` is given, only pairs in *different* components are
    considered; returns ``(-1, -1, inf)`` if none exists.

    ``core_sq`` (squared core distances per point) switches the metric to
    mutual reachability: pair distances become
    ``max(d_sq, core_sq[i], core_sq[j])``.  Box-gap pruning stays valid
    because the m.r.d. dominates the Euclidean distance.

    Ties resolve by the ``(min(i,j), max(i,j))`` index pair, keeping BCP
    results consistent with the library-wide edge total order.
    """
    best = [np.inf, -1, -1]  # d_sq, i, j
    best_key = [np.inf, np.inf]
    points = tree.points
    lo, hi = tree.lo, tree.hi

    def leaf_pair(a: int, b: int) -> None:
        ia = tree.node_indices(a)
        ib = tree.node_indices(b)
        pa = points[ia]
        pb = points[ib]
        # Direct differences: rounding (hence tie behaviour) must match
        # the library's points_sq exactly.
        diff = pa[:, None, :] - pb[None, :, :]
        d2 = np.sum(diff * diff, axis=2)
        if core_sq is not None:
            d2 = np.maximum(d2, core_sq[ia][:, None])
            d2 = np.maximum(d2, core_sq[ib][None, :])
        if counters is not None:
            counters.distance_evals += d2.size
        if component_of is not None:
            same = component_of[ia][:, None] == component_of[ib][None, :]
            d2 = np.where(same, np.inf, d2)
        m = d2.min()
        if not np.isfinite(m) or m > best[0]:
            return
        rows, cols = np.nonzero(d2 == m)
        cand_i = ia[rows]
        cand_j = ib[cols]
        klo = np.minimum(cand_i, cand_j)
        khi = np.maximum(cand_i, cand_j)
        pick = np.lexsort((khi, klo))[0]
        key = (float(klo[pick]), float(khi[pick]))
        if m < best[0] or (m == best[0] and key < tuple(best_key)):
            best[0] = m
            best[1] = int(cand_i[pick])
            best[2] = int(cand_j[pick])
            best_key[0], best_key[1] = key

    def recurse(a: int, b: int) -> None:
        gap = box_box_sq(lo[a], hi[a], lo[b], hi[b])
        if counters is not None:
            counters.box_distance_evals += 1
            counters.nodes_visited += 1
        if gap > best[0]:
            return
        a_leaf = tree.is_leaf(a)
        b_leaf = tree.is_leaf(b)
        if a_leaf and b_leaf:
            leaf_pair(a, b)
            return
        # Split the larger node (by subtree size) for balanced recursion.
        if b_leaf or (not a_leaf and tree.node_size(a) >= tree.node_size(b)):
            children = [(int(tree.left[a]), b), (int(tree.right[a]), b)]
        else:
            children = [(a, int(tree.left[b])), (a, int(tree.right[b]))]
        children.sort(key=lambda ab: float(
            box_box_sq(lo[ab[0]], hi[ab[0]], lo[ab[1]], hi[ab[1]])))
        for ca, cb in children:
            recurse(ca, cb)

    recurse(node_a, node_b)
    if best[1] < 0:
        return -1, -1, np.inf
    return best[1], best[2], float(best[0])
