"""Well-separated pair decomposition (Callahan–Kosaraju 1995).

Two point sets are *well separated* with factor ``s`` when they fit in
enclosing balls of radius ``r`` whose gap is at least ``s * r``.  The WSPD
covers every point pair by exactly one well-separated node pair; with
``s >= 2`` every MST edge is the bichromatic closest pair of some WSPD pair
(Agarwal et al. 1991), which is the foundation of the GeoMST/MemoGFK
algorithms the paper benchmarks against.

The decomposition is the standard recursion: for every internal node pair up
the tree, either the pair is well separated (emit) or the node with the
larger ball is split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters
from repro.spatial.fairsplit import FairSplitTree


@dataclass(frozen=True)
class WSPDPair:
    """One well-separated node pair ``(a, b)`` with its separation gap.

    ``gap`` is the center distance minus both radii — a lower bound on the
    distance between any point of ``a`` and any point of ``b``.
    """

    a: int
    b: int
    gap: float


def _balls(tree: FairSplitTree):
    centers = 0.5 * (tree.lo + tree.hi)
    diff = tree.hi - tree.lo
    radii = 0.5 * np.sqrt(np.sum(diff * diff, axis=1))
    return centers, radii


def well_separated_pairs(
    tree: FairSplitTree,
    s: float = 2.0,
    *,
    counters: Optional[CostCounters] = None,
) -> List[WSPDPair]:
    """All well-separated pairs of ``tree`` with separation factor ``s``."""
    if s <= 0:
        raise InvalidInputError(f"separation factor must be positive: {s}")
    centers, radii = _balls(tree)
    left, right = tree.left, tree.right
    pairs: List[WSPDPair] = []
    visits = 0

    # Seed with (left, right) of every internal node: these cover each
    # point pair exactly once because the tree partitions the points.
    stack = [(int(left[i]), int(right[i]))
             for i in range(tree.n_nodes) if left[i] >= 0]
    while stack:
        a, b = stack.pop()
        visits += 1
        ra = radii[a]
        rb = radii[b]
        d = float(np.sqrt(np.sum((centers[a] - centers[b]) ** 2)))
        gap = d - ra - rb
        if gap >= s * max(ra, rb):
            pairs.append(WSPDPair(a, b, gap if gap > 0 else 0.0))
            continue
        # Split the node with the larger ball (fair-split guarantee makes
        # this terminate); leaves with identical duplicated points have
        # radius 0 and are only split if the partner is also radius 0 --
        # in that degenerate case the pair is emitted with gap >= 0 above
        # unless the balls coincide, which we emit as an unseparated pair.
        split_a = ra > rb or (ra == rb and not tree.is_leaf(a))
        if split_a and tree.is_leaf(a):
            split_a = False
        if not split_a and tree.is_leaf(b):
            if tree.is_leaf(a):
                # Two leaves that are not well separated (duplicate-heavy
                # data): emit anyway; BCP handles the exact distances.
                pairs.append(WSPDPair(a, b, max(gap, 0.0)))
                continue
            split_a = True
        if split_a:
            stack.append((int(left[a]), b))
            stack.append((int(right[a]), b))
        else:
            stack.append((a, int(left[b])))
            stack.append((a, int(right[b])))

    if counters is not None:
        counters.record_bulk(visits, ops_per_item=12.0, bytes_per_item=48.0)
    return pairs


def wspd_covers_all_pairs(tree: FairSplitTree,
                          pairs: List[WSPDPair]) -> bool:
    """Check the WSPD covering property (test helper, ``O(n^2)``).

    Every unordered point pair must appear in exactly one WSPD node pair —
    except pairs of coincident points sharing a multi-point leaf, which the
    tree cannot distinguish and the WSPD therefore cannot (and need not)
    cover: consumers connect those with zero-weight edges directly.
    """
    n = tree.n
    seen = np.zeros((n, n), dtype=np.int32)
    for pair in pairs:
        ia = tree.node_indices(pair.a)
        ib = tree.node_indices(pair.b)
        seen[np.ix_(ia, ib)] += 1
        seen[np.ix_(ib, ia)] += 1
    expected = np.ones((n, n), dtype=np.int32)
    np.fill_diagonal(expected, 0)
    for node in range(tree.n_nodes):
        if tree.is_leaf(node) and tree.node_size(node) > 1:
            idx = tree.node_indices(node)
            expected[np.ix_(idx, idx)] = 0
    return bool(np.all(seen == expected))
