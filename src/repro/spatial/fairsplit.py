"""Callahan–Kosaraju fair-split tree.

The decomposition tree used by the WSPD (Section 2 of the paper; Callahan &
Kosaraju 1995).  Each internal node splits its bounding box in the middle
of its *longest* side, partitioning the points; empty halves cannot occur
because the box is the tight bound of the node's points.  The fair-split
rule guarantees geometrically shrinking cells, which is what bounds the
WSPD size.

Layout matches :class:`repro.spatial.kdtree.KDTree` (flat arrays, point
ranges in a permutation) so the BCP and WSPD routines work on either tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters


@dataclass
class FairSplitTree:
    """Flat fair-split tree; node ``i`` is a leaf iff ``left[i] < 0``."""

    points: np.ndarray
    perm: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    left: np.ndarray
    right: np.ndarray
    start: np.ndarray
    end: np.ndarray

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of tree nodes."""
        return self.lo.shape[0]

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no children."""
        return self.left[node] < 0

    def node_indices(self, node: int) -> np.ndarray:
        """Original point indices in ``node``'s subtree."""
        return self.perm[self.start[node]:self.end[node]]

    def node_size(self, node: int) -> int:
        """Number of points under ``node``."""
        return int(self.end[node] - self.start[node])

    def radius(self, node: int) -> float:
        """Radius of the enclosing ball (half the box diagonal)."""
        diff = self.hi[node] - self.lo[node]
        return 0.5 * float(np.sqrt(np.sum(diff * diff)))

    def center(self, node: int) -> np.ndarray:
        """Center of the node's bounding box."""
        return 0.5 * (self.lo[node] + self.hi[node])


def build_fair_split_tree(points: np.ndarray,
                          counters: Optional[CostCounters] = None
                          ) -> FairSplitTree:
    """Build the fair-split tree (leaves are single points).

    Duplicate points collapse into multi-point leaves (their box has zero
    extent and cannot be split), which downstream WSPD/BCP code handles.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    n = points.shape[0]

    perm = np.arange(n, dtype=np.int64)
    lo_list, hi_list = [], []
    left_list, right_list, start_list, end_list = [], [], [], []

    def new_node(s: int, e: int) -> int:
        node = len(lo_list)
        seg = points[perm[s:e]]
        lo_list.append(seg.min(axis=0))
        hi_list.append(seg.max(axis=0))
        left_list.append(-1)
        right_list.append(-1)
        start_list.append(s)
        end_list.append(e)
        return node

    root = new_node(0, n)
    stack = [root]
    while stack:
        node = stack.pop()
        s, e = start_list[node], end_list[node]
        if e - s <= 1:
            continue
        widths = hi_list[node] - lo_list[node]
        axis = int(np.argmax(widths))
        if widths[axis] == 0.0:
            continue  # all points identical: keep as a multi-point leaf
        split = 0.5 * (lo_list[node][axis] + hi_list[node][axis])
        seg = perm[s:e]
        mask = points[seg, axis] <= split
        n_left = int(np.count_nonzero(mask))
        if n_left == 0 or n_left == e - s:
            # Numerically possible when all points sit on one side of the
            # midpoint; fall back to a median split on this axis.
            order = np.argsort(points[seg, axis], kind="stable")
            seg = seg[order]
            n_left = (e - s) // 2
            perm[s:e] = seg
        else:
            perm[s:e] = np.concatenate([seg[mask], seg[~mask]])
        left_list[node] = new_node(s, s + n_left)
        right_list[node] = new_node(s + n_left, e)
        stack.append(left_list[node])
        stack.append(right_list[node])

    tree = FairSplitTree(
        points=points,
        perm=perm,
        lo=np.asarray(lo_list),
        hi=np.asarray(hi_list),
        left=np.asarray(left_list, dtype=np.int64),
        right=np.asarray(right_list, dtype=np.int64),
        start=np.asarray(start_list, dtype=np.int64),
        end=np.asarray(end_list, dtype=np.int64),
    )
    if counters is not None:
        depth = max(int(np.ceil(np.log2(max(n, 2)))), 1)
        counters.record_bulk(n, ops_per_item=5.0 * depth, bytes_per_item=16.0)
        # The level-by-level partitioning is sort-like and memory-bound;
        # it is the phase the paper observes scaling poorly on CPUs
        # (Figure 8a: tree construction becomes the multithreaded
        # bottleneck), so it is charged to the serial-sort budget.
        counters.record_sort(n, bytes_per_item=16.0)
    return tree
