"""Median-split kd-tree in a flat array-of-nodes layout.

The substrate of the CPU baselines (Bentley–Friedman 1978 and the dual-tree
Borůvka of March et al. 2010).  Nodes split the widest dimension of their
bounding box at the point median; leaves hold up to ``leaf_size`` points as
a contiguous range of a permutation array, so leaf point access is a cheap
slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters


@dataclass
class KDTree:
    """Flat kd-tree: node ``i`` is a leaf iff ``left[i] < 0``.

    ``perm[start[i]:end[i]]`` are the (original) indices of the points in
    node ``i``'s subtree; for internal nodes the range covers both children.
    """

    points: np.ndarray
    perm: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    left: np.ndarray
    right: np.ndarray
    start: np.ndarray
    end: np.ndarray
    leaf_size: int

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of tree nodes."""
        return self.lo.shape[0]

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no children."""
        return self.left[node] < 0

    def node_indices(self, node: int) -> np.ndarray:
        """Original point indices in ``node``'s subtree."""
        return self.perm[self.start[node]:self.end[node]]

    def node_size(self, node: int) -> int:
        """Number of points under ``node``."""
        return int(self.end[node] - self.start[node])


def build_kdtree(points: np.ndarray, leaf_size: int = 16,
                 counters: Optional[CostCounters] = None) -> KDTree:
    """Build a median-split kd-tree over ``points``.

    Construction is iterative (explicit work stack) to support deep trees,
    ``O(n log n)`` via ``np.argpartition`` medians.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if leaf_size < 1:
        raise InvalidInputError(f"leaf_size must be >= 1, got {leaf_size}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    n = points.shape[0]

    perm = np.arange(n, dtype=np.int64)
    lo_list, hi_list = [], []
    left_list, right_list, start_list, end_list = [], [], [], []

    def new_node(s: int, e: int) -> int:
        node = len(lo_list)
        seg = points[perm[s:e]]
        lo_list.append(seg.min(axis=0))
        hi_list.append(seg.max(axis=0))
        left_list.append(-1)
        right_list.append(-1)
        start_list.append(s)
        end_list.append(e)
        return node

    root = new_node(0, n)
    stack = [root]
    while stack:
        node = stack.pop()
        s, e = start_list[node], end_list[node]
        if e - s <= leaf_size:
            continue
        widths = hi_list[node] - lo_list[node]
        axis = int(np.argmax(widths))
        seg = perm[s:e]
        mid = (e - s) // 2
        # argpartition puts the median in place; ties split arbitrarily,
        # which is fine — both halves stay non-empty because mid >= 1.
        part = np.argpartition(points[seg, axis], mid)
        perm[s:e] = seg[part]
        left_list[node] = new_node(s, s + mid)
        right_list[node] = new_node(s + mid, e)
        stack.append(left_list[node])
        stack.append(right_list[node])

    tree = KDTree(
        points=points,
        perm=perm,
        lo=np.asarray(lo_list),
        hi=np.asarray(hi_list),
        left=np.asarray(left_list, dtype=np.int64),
        right=np.asarray(right_list, dtype=np.int64),
        start=np.asarray(start_list, dtype=np.int64),
        end=np.asarray(end_list, dtype=np.int64),
        leaf_size=leaf_size,
    )
    if counters is not None:
        depth = max(int(np.ceil(np.log2(max(n / leaf_size, 2)))), 1)
        counters.record_bulk(n, ops_per_item=4.0 * depth,
                             bytes_per_item=16.0)
        counters.record_sort(n)
    return tree
