"""Geometric primitives: AABBs, distance kernels, Morton (Z-curve) codes.

Everything in this package is a vectorized NumPy kernel operating on arrays
of points/boxes; scalar reference implementations used by the test suite
live next to their vectorized counterparts.
"""

from repro.geometry.aabb import (
    aabb_of_points,
    aabb_union,
    box_contains_points,
    validate_boxes,
)
from repro.geometry.distance import (
    all_pairs_sq,
    gather_pair_sq,
    point_box_sq,
    points_sq,
)
from repro.geometry.morton import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    bit_length_u64,
    common_prefix_length,
    morton_encode,
    morton_encode_scalar,
    morton_order,
    normalize_to_grid,
)

__all__ = [
    "aabb_of_points",
    "aabb_union",
    "box_contains_points",
    "validate_boxes",
    "all_pairs_sq",
    "gather_pair_sq",
    "point_box_sq",
    "points_sq",
    "MAX_BITS_2D",
    "MAX_BITS_3D",
    "bit_length_u64",
    "common_prefix_length",
    "morton_encode",
    "morton_encode_scalar",
    "morton_order",
    "normalize_to_grid",
]
