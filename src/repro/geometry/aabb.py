"""Axis-aligned bounding boxes stored as parallel ``(k, d)`` arrays.

Boxes are represented structure-of-arrays style — separate ``lo`` and ``hi``
coordinate arrays — matching how the BVH stores node bounds for coalesced
access on a GPU.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import InvalidInputError


def aabb_of_points(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The tight bounding box of a non-empty ``(n, d)`` point set.

    Returns ``(lo, hi)`` arrays of shape ``(d,)``.

    >>> lo, hi = aabb_of_points(np.array([[0.0, 1.0], [2.0, -1.0]]))
    >>> lo.tolist(), hi.tolist()
    ([0.0, -1.0], [2.0, 1.0])
    """
    points = np.asarray(points)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    return points.min(axis=0), points.max(axis=0)


def aabb_union(lo_a: np.ndarray, hi_a: np.ndarray,
               lo_b: np.ndarray, hi_b: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise union of aligned box arrays (any matching shapes)."""
    return np.minimum(lo_a, lo_b), np.maximum(hi_a, hi_b)


def box_contains_points(lo: np.ndarray, hi: np.ndarray,
                        points: np.ndarray, *, atol: float = 0.0) -> np.ndarray:
    """Boolean mask of which ``points`` lie inside the single box ``(lo, hi)``.

    ``atol`` loosens the test for floating-point tolerance.
    """
    points = np.asarray(points)
    return np.all((points >= lo - atol) & (points <= hi + atol), axis=1)


def box_contains_box(lo_outer: np.ndarray, hi_outer: np.ndarray,
                     lo_inner: np.ndarray, hi_inner: np.ndarray,
                     *, atol: float = 0.0) -> np.ndarray:
    """Elementwise test that each inner box is contained in its outer box."""
    lo_ok = np.all(lo_outer - atol <= lo_inner, axis=-1)
    hi_ok = np.all(hi_outer + atol >= hi_inner, axis=-1)
    return lo_ok & hi_ok


def validate_boxes(lo: np.ndarray, hi: np.ndarray) -> None:
    """Raise :class:`InvalidInputError` unless every box satisfies lo<=hi."""
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    if lo.shape != hi.shape:
        raise InvalidInputError(
            f"box array shape mismatch: {lo.shape} vs {hi.shape}")
    if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
        raise InvalidInputError("box coordinates contain non-finite values")
    if np.any(lo > hi):
        raise InvalidInputError("found boxes with lo > hi")


def box_diameter_sq(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Squared diagonal length of each box (used by WSPD well-separation)."""
    diff = np.asarray(hi) - np.asarray(lo)
    return np.sum(diff * diff, axis=-1)
