"""Morton (Z-order) codes for 2D and 3D points.

The linear BVH construction (Karras 2012) sorts points along a space-filling
curve before building the hierarchy; ArborX uses the Z-curve.  This module
provides vectorized bit-interleaving encoders for 2D (up to 31 bits/dim) and
3D (up to 21 bits/dim) plus a scalar reference encoder for the tests.

The paper (Section 4.1) attributes its one pathological dataset
(GeoLife24M3D) to Z-curve under-resolution and suggests 128-bit codes; the
``bits`` parameter exposes the resolution knob, and
:func:`morton_order` supports double-precision ordering by encoding a
second, finer key and lexicographically sorting — the moral equivalent of
widening the code.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import DimensionError, InvalidInputError

#: Maximum bits per dimension that fit interleaved into a uint64.
MAX_BITS_2D = 31
MAX_BITS_3D = 21

_U = np.uint64


def normalize_to_grid(points: np.ndarray, bits: int,
                      lo: Optional[np.ndarray] = None,
                      hi: Optional[np.ndarray] = None) -> np.ndarray:
    """Map points into integer grid coordinates ``[0, 2**bits - 1]``.

    ``lo``/``hi`` default to the tight bounding box of the input.  Degenerate
    extents (all points sharing a coordinate) map to grid coordinate 0.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    if lo is None:
        lo = points.min(axis=0)
    if hi is None:
        hi = points.max(axis=0)
    extent = np.asarray(hi, dtype=np.float64) - np.asarray(lo, dtype=np.float64)
    scale = np.where(extent > 0.0, (2.0**bits - 1.0) / np.where(extent > 0, extent, 1.0), 0.0)
    grid = (points - lo) * scale
    np.clip(grid, 0.0, 2.0**bits - 1.0, out=grid)
    return grid.astype(np.uint64)


def _expand_bits_2d(v: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of ``v`` so consecutive bits are 2 apart."""
    v = v & _U(0x7FFFFFFF)
    v = (v | (v << _U(16))) & _U(0x0000FFFF0000FFFF)
    v = (v | (v << _U(8))) & _U(0x00FF00FF00FF00FF)
    v = (v | (v << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << _U(2))) & _U(0x3333333333333333)
    v = (v | (v << _U(1))) & _U(0x5555555555555555)
    return v


def _expand_bits_3d(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``v`` so consecutive bits are 3 apart."""
    v = v & _U(0x1FFFFF)
    v = (v | (v << _U(32))) & _U(0x001F00000000FFFF)
    v = (v | (v << _U(16))) & _U(0x001F0000FF0000FF)
    v = (v | (v << _U(8))) & _U(0x100F00F00F00F00F)
    v = (v | (v << _U(4))) & _U(0x10C30C30C30C30C3)
    v = (v | (v << _U(2))) & _U(0x1249249249249249)
    return v


def morton_encode(points: np.ndarray, bits: Optional[int] = None) -> np.ndarray:
    """Vectorized Morton codes for an ``(n, 2)`` or ``(n, 3)`` point array.

    Returns a uint64 code per point.  ``bits`` defaults to the maximum
    resolution for the dimension (31 for 2D, 21 for 3D).
    """
    points = np.asarray(points)
    if points.ndim != 2:
        raise InvalidInputError(f"expected (n, d) points, got {points.shape}")
    d = points.shape[1]
    if d == 2:
        max_bits = MAX_BITS_2D
    elif d == 3:
        max_bits = MAX_BITS_3D
    else:
        raise DimensionError(f"Morton codes support d in (2, 3), got d={d}")
    if bits is None:
        bits = max_bits
    if not 1 <= bits <= max_bits:
        raise InvalidInputError(f"bits must be in [1, {max_bits}] for d={d}")
    grid = normalize_to_grid(points, bits)
    if d == 2:
        return (_expand_bits_2d(grid[:, 0])
                | (_expand_bits_2d(grid[:, 1]) << _U(1)))
    return (_expand_bits_3d(grid[:, 0])
            | (_expand_bits_3d(grid[:, 1]) << _U(1))
            | (_expand_bits_3d(grid[:, 2]) << _U(2)))


def morton_encode_scalar(coords: Tuple[int, ...], bits: int) -> int:
    """Reference bit-by-bit Morton encoder for a single grid coordinate.

    Interleaves with dimension 0 in the least significant position,
    matching :func:`morton_encode`.
    """
    d = len(coords)
    if d not in (2, 3):
        raise DimensionError(f"Morton codes support d in (2, 3), got d={d}")
    code = 0
    for bit in range(bits):
        for axis in range(d):
            if (coords[axis] >> bit) & 1:
                code |= 1 << (bit * d + axis)
    return code


def morton_order(points: np.ndarray, bits: Optional[int] = None) -> np.ndarray:
    """Permutation sorting points along the Z-curve (ties by index).

    ``np.argsort(kind="stable")`` makes equal codes resolve by original
    index, which keeps downstream constructions deterministic.
    """
    codes = morton_encode(points, bits)
    return np.argsort(codes, kind="stable")


def morton_encode_high(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Double-resolution Morton codes as ``(hi, lo)`` uint64 pairs.

    The paper attributes its GeoLife pathology to Z-curve under-resolution
    and proposes 128-bit Morton codes (Section 4.1).  This implements that
    fix: each dimension gets twice the bits (62 for 2D, 42 for 3D).  The
    *coarse* halves of the grid coordinates interleave into ``hi`` and the
    *fine* halves into ``lo``; comparing ``(hi, lo)`` lexicographically is
    then exactly the order of the conceptual double-width interleaved code,
    because all coarse bits of every dimension outrank all fine bits.
    """
    points = np.asarray(points)
    if points.ndim != 2:
        raise InvalidInputError(f"expected (n, d) points, got {points.shape}")
    d = points.shape[1]
    if d == 2:
        bits = 2 * MAX_BITS_2D  # 62 bits/dim
        half = MAX_BITS_2D
        expand = _expand_bits_2d
    elif d == 3:
        bits = 2 * MAX_BITS_3D  # 42 bits/dim
        half = MAX_BITS_3D
        expand = _expand_bits_3d
    else:
        raise DimensionError(f"Morton codes support d in (2, 3), got d={d}")
    grid = normalize_to_grid(points, bits)
    coarse = grid >> _U(half)
    fine = grid & _U((1 << half) - 1)

    def interleave(g: np.ndarray) -> np.ndarray:
        code = expand(g[:, 0])
        code = code | (expand(g[:, 1]) << _U(1))
        if d == 3:
            code = code | (expand(g[:, 2]) << _U(2))
        return code

    return interleave(coarse), interleave(fine)


def morton_order_high(points: np.ndarray) -> np.ndarray:
    """Permutation sorting points along the double-resolution Z-curve."""
    hi, lo = morton_encode_high(points)
    return np.lexsort((np.arange(points.shape[0]), lo, hi))


def bit_length_u64(x: np.ndarray) -> np.ndarray:
    """Exact bit length of each uint64 (0 for 0), vectorized.

    Splits into 32-bit halves and uses ``frexp``; every uint32 is exactly
    representable in float64, so the exponent returned by ``frexp`` equals
    the bit length exactly (no log2 rounding hazards).
    """
    x = np.asarray(x, dtype=np.uint64)
    hi = (x >> _U(32)).astype(np.float64)
    lo = (x & _U(0xFFFFFFFF)).astype(np.float64)
    _, hi_exp = np.frexp(hi)
    _, lo_exp = np.frexp(lo)
    return np.where(hi > 0, hi_exp + 32, lo_exp).astype(np.int64)


def common_prefix_length_high(hi: np.ndarray, lo: np.ndarray,
                              i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Karras delta for double-width ``(hi, lo)`` codes (range [0, 128]).

    Falls through to the index tie-break (conceptually appending the index)
    when both words agree; out-of-range ``j`` yields -1.
    """
    hi = np.asarray(hi, dtype=np.uint64)
    lo = np.asarray(lo, dtype=np.uint64)
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    n = hi.shape[0]
    valid = (j >= 0) & (j < n)
    j_safe = np.where(valid, j, 0)
    xor_hi = hi[i] ^ hi[j_safe]
    xor_lo = lo[i] ^ lo[j_safe]
    delta = np.where(xor_hi != 0,
                     64 - bit_length_u64(xor_hi),
                     128 - bit_length_u64(xor_lo))
    idx_xor = (i.astype(np.uint64)) ^ (j_safe.astype(np.uint64))
    tie = 128 + (64 - bit_length_u64(idx_xor))
    delta = np.where((xor_hi == 0) & (xor_lo == 0), tie, delta)
    return np.where(valid, delta, -1)


def common_prefix_length(codes: np.ndarray, i: np.ndarray,
                         j: np.ndarray) -> np.ndarray:
    """Karras' delta: common-prefix length of codes at ``i`` and ``j``.

    When two codes are equal, the comparison falls through to the *indices*
    (conceptually appending the 64-bit index to the code), guaranteeing
    strictly decreasing deltas away from every node and a well-formed
    hierarchy even with duplicate points.  Out-of-range ``j`` yields -1.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    n = codes.shape[0]
    valid = (j >= 0) & (j < n)
    j_safe = np.where(valid, j, 0)
    xor = codes[i] ^ codes[j_safe]
    delta = 64 - bit_length_u64(xor)
    idx_xor = (i.astype(np.uint64)) ^ (j_safe.astype(np.uint64))
    tie = 64 - bit_length_u64(idx_xor)
    delta = np.where(xor == 0, 64 + tie, delta)
    return np.where(valid, delta, -1)
