"""Squared-distance kernels.

All comparisons in the library use *squared* Euclidean distances: square
root is monotone, so nearest-neighbor and MST decisions are unaffected, and
skipping it matches what the real GPU kernels do.  The mutual-reachability
metric composes correctly in squared space because ``max`` commutes with the
monotone square (see :mod:`repro.core.mutual_reachability`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInputError


def points_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared distance between aligned point arrays ``a`` and ``b``.

    Shapes broadcast; for ``(k, d)`` inputs the result is ``(k,)``.

    >>> float(points_sq(np.array([0.0, 0.0]), np.array([3.0, 4.0])))
    25.0
    """
    diff = np.asarray(a) - np.asarray(b)
    return np.sum(diff * diff, axis=-1)


def gather_pair_sq(points: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Squared distances between points ``points[u]`` and ``points[v]``."""
    points = np.asarray(points)
    return points_sq(points[np.asarray(u)], points[np.asarray(v)])


def point_box_sq(p: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Squared distance from each point to its axis-aligned box.

    ``p``, ``lo``, ``hi`` broadcast against each other; zero when the point
    is inside the box.  This is the lower bound used to prune BVH subtrees
    (Algorithm 2, line 9).

    >>> float(point_box_sq(np.array([2.0, 0.0]), np.array([0.0, 0.0]),
    ...                    np.array([1.0, 1.0])))
    1.0
    """
    p = np.asarray(p)
    d = np.maximum(np.asarray(lo) - p, 0.0)
    d = np.maximum(d, p - np.asarray(hi))
    return np.sum(d * d, axis=-1)


def box_box_sq(lo_a: np.ndarray, hi_a: np.ndarray,
               lo_b: np.ndarray, hi_b: np.ndarray) -> np.ndarray:
    """Squared minimum distance between aligned box arrays (0 if overlapping)."""
    gap = np.maximum(np.asarray(lo_b) - np.asarray(hi_a), 0.0)
    gap = np.maximum(gap, np.asarray(lo_a) - np.asarray(hi_b))
    return np.sum(gap * gap, axis=-1)


def box_box_max_sq(lo_a: np.ndarray, hi_a: np.ndarray,
                   lo_b: np.ndarray, hi_b: np.ndarray) -> np.ndarray:
    """Squared maximum distance between aligned box arrays.

    Upper bound on the distance between any point of box A and any point of
    box B; used by the dual-tree algorithm's component bounds.
    """
    span = np.maximum(np.abs(np.asarray(hi_b) - np.asarray(lo_a)),
                      np.abs(np.asarray(hi_a) - np.asarray(lo_b)))
    return np.sum(span * span, axis=-1)


def all_pairs_sq(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` squared-distance matrix (naive baselines only).

    Guarded against accidental use on large inputs — the whole point of the
    paper is to avoid materializing the distance graph.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise InvalidInputError(f"expected (n, d) points, got {points.shape}")
    n = points.shape[0]
    if n > 20_000:
        raise InvalidInputError(
            f"refusing to materialize a {n}x{n} distance matrix; "
            "use the tree-based algorithms for large inputs")
    # Computed as sum((a-b)^2) — NOT the |a|^2+|b|^2-2ab dot trick — so the
    # rounding matches :func:`points_sq` bit for bit.  The oracles break
    # distance ties exactly like the tree algorithms only because every
    # implementation evaluates distances with the same expression.
    d2 = np.empty((n, n), dtype=np.float64)
    block = max(1, 2_000_000 // max(n, 1))
    for start in range(0, n, block):
        stop = min(start + block, n)
        diff = points[start:stop, None, :] - points[None, :, :]
        d2[start:stop] = np.sum(diff * diff, axis=2)
    np.fill_diagonal(d2, 0.0)
    return d2
