"""Wavefront traversal kernels: multi-pop frontiers over blocked leaves.

The single-pop reference kernels (:mod:`repro.bvh.reference`) advance every
query lane by exactly one BVH node per Python iteration, so end-to-end time
is dominated by the iteration count of the *deepest* lane — pure
interpreter overhead, not arithmetic.  The wavefront kernels drain a
variable number of stack entries per lane per iteration into one flattened
``(lane, node)`` frontier, processing the whole frontier with the same
vectorized passes.  Three design decisions carry the speedup:

* **adaptive drain width** — the per-lane drain is
  ``clamp(FRONTIER_TARGET // active_lanes, 1, width)``: while many lanes
  are active the kernel pops one node per lane (the batch is already wide;
  draining deeper only staleness the pruning radius), and as lanes finish
  the survivors drain more entries per iteration, so the flattened frontier
  — and with it the per-iteration vector width — stays large through the
  traversal tail;
* **distance-carrying stacks** — each pushed child's point-box lower bound
  is stored next to its node id, so the mandatory re-test against the
  shrunken radius (Algorithm 2, line 9) is a comparison on remembered
  values instead of a re-gathered, re-computed box distance; the two
  surviving children are then evaluated in one fused broadcast pass;
* **blocked leaves** — a leaf visit evaluates its whole point block with
  per-point admissibility masked before the distance computation, and all
  candidates of a drain fold into the running best via scatter-min passes
  (:func:`repro.bvh.query.update_nearest_best`) — no per-candidate sort.

Results are identical to the reference engine whenever candidate order is
immaterial: keyed nearest queries minimize a total order
``(distance, pair key)``, so the EMST pipeline gets byte-identical edges,
weights and tie-breaks; k-NN distance columns match because the k smallest
distances are order-free.  Only *positions* of exactly-tied unkeyed
candidates may differ — the same caveat that already applied across tree
rebuilds.

Counter semantics under multi-pop (pinned by the regression tests):

* ``nodes_visited`` / ``stack_ops`` count flattened ``(lane, node)``
  frontier entries — each drained entry is one node pop, and each pushed
  child one stack write;
* ``box_distance_evals`` counts *computed* box distances: one per query
  for the root seed plus two fused child evaluations per entry surviving
  the re-test (the re-test itself reuses the stored value, so it is a
  comparison, not an evaluation — the one counter that differs from the
  recomputing reference engine);
* ``leaf_visits`` counts ``(lane, leaf)`` visits, ``distance_evals``
  admissible *point* candidates (a blocked leaf contributes up to
  ``leaf_size``);
* ``lane_steps`` / ``warp_steps`` advance once per *drain* for every lane
  (warp) with a non-empty stack — a drain is what a SIMT iteration becomes.

With ``width=1`` and ``leaf_size=1`` every counter except
``box_distance_evals`` matches the reference kernels exactly, and every
result does too.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.query import (
    _NO_KEY,
    KnnResult,
    NearestResult,
    leaf_candidates,
    merge_k_best,
    single_leaf_excluded,
    pair_keys,
    resolve_point_labels,
    update_nearest_best,
    validate_query_points,
)
from repro.bvh.workspace import TraversalWorkspace
from repro.errors import InvalidInputError
from repro.geometry.distance import point_box_sq, points_sq
from repro.kokkos.counters import CostCounters, WarpTrace

#: Default cap on stack entries drained per lane per iteration.  Chosen by
#: the ``bench_kernels`` width sweep (see README "Performance"): wide
#: enough to collapse the Python-iteration count of the traversal tail,
#: narrow enough that the stale-radius overvisit stays in the noise.
DEFAULT_WIDTH = 64

#: Target flattened frontier size per drain (see the module docstring).
FRONTIER_TARGET = 32768


def _effective_width(n_active: int, width: int) -> int:
    """Adaptive drain width for ``n_active`` lanes, capped at ``width``."""
    return max(1, min(width, FRONTIER_TARGET // max(n_active, 1)))


def _drain(stack: np.ndarray, dstack: Optional[np.ndarray], sp: np.ndarray,
           lanes: np.ndarray, width: int
           ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Pop up to ``width`` entries per active lane, flattened.

    Returns ``(lane_of, node, dist)`` over all popped entries (``dist``
    ``None`` when no distance stack is used); entries of one lane appear
    top-of-stack first (LIFO within the drain), grouped by ascending lane.
    """
    if width == 1:
        sp[lanes] -= 1
        cols = sp[lanes]
        node = stack[lanes, cols].astype(np.int64)
        dist = dstack[lanes, cols] if dstack is not None else None
        return lanes, node, dist
    t = np.minimum(sp[lanes], width)
    lane_of = np.repeat(lanes, t)
    ends = np.cumsum(t)
    within = np.arange(int(ends[-1]), dtype=np.int64) \
        - np.repeat(ends - t, t)
    cols = sp[lane_of] - 1 - within
    node = stack[lane_of, cols].astype(np.int64)
    dist = dstack[lane_of, cols] if dstack is not None else None
    sp[lanes] -= t
    return lane_of, node, dist


def _scatter_pushes(
    workspace: TraversalWorkspace,
    stack: np.ndarray,
    dstack: Optional[np.ndarray],
    sp: np.ndarray,
    batch: int,
    lane: np.ndarray,
    any_push: np.ndarray,
    both: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
    first_d: Optional[np.ndarray],
    second_d: Optional[np.ndarray],
    unique_lanes: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
    """Write this drain's pushes into the per-lane stacks, sort-free.

    ``lane`` is the kept frontier (ascending lane, top-of-stack first
    within a lane); ``first``/``second`` are each entry's pushes
    (``second`` only where ``both``), with their box distances when a
    distance stack is in use.  Per lane, *later* frontier entries write to
    *lower* stack slots, so the next drain pops the topmost entry's near
    child first — preserving the reference engine's best-first descent
    preference.  Returns the (possibly regrown) stacks and the push count.
    """
    c = any_push.astype(np.int64)
    c += both
    if unique_lanes:
        # Single-pop drain: each lane appears at most once, so pushes go
        # straight above the lane's stack pointer — no prefix machinery.
        # (Matches the reference engine's push path op for op.)
        total = int(c.sum())
        if total == 0:
            return stack, dstack, 0
        need = int(sp.max()) + 2
        if need > stack.shape[1]:
            stack, dstack = workspace.grow_stack(batch, need, stack, sp,
                                                 dstack)
        lane_a = lane[any_push]
        col_a = sp[lane_a]
        stack[lane_a, col_a] = first[any_push].astype(np.int32)
        sp[lane_a] += 1
        lane_b = lane[both]
        col_b = sp[lane_b]
        stack[lane_b, col_b] = second[both].astype(np.int32)
        sp[lane_b] += 1
        if dstack is not None:
            dstack[lane_a, col_a] = first_d[any_push]
            dstack[lane_b, col_b] = second_d[both]
        return stack, dstack, total
    counts = np.bincount(lane, weights=c, minlength=batch).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return stack, dstack, 0
    need = int((sp + counts).max())
    if need > stack.shape[1]:
        stack, dstack = workspace.grow_stack(batch, need, stack, sp, dstack)
    # Within-lane exclusive prefix of push counts, entry order.
    prefix = np.cumsum(c) - c
    heads = np.ones(lane.size, dtype=bool)
    heads[1:] = lane[1:] != lane[:-1]
    starts = np.nonzero(heads)[0]
    lengths = np.diff(np.append(starts, lane.size))
    prefix = prefix - np.repeat(prefix[starts], lengths)
    # Later entries get lower slots: base descends as the prefix grows.
    base = sp[lane] + counts[lane] - prefix - c
    lane_a = lane[any_push]
    col_a = base[any_push]
    stack[lane_a, col_a] = first[any_push].astype(np.int32)
    lane_b = lane[both]
    col_b = base[both] + 1
    stack[lane_b, col_b] = second[both].astype(np.int32)
    if dstack is not None:
        dstack[lane_a, col_a] = first_d[any_push]
        dstack[lane_b, col_b] = second_d[both]
    sp += counts
    return stack, dstack, total



def _children_box_sq(boxes: np.ndarray, l_child: np.ndarray,
                     r_child: np.ndarray, qp: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Fused box lower bounds of both children of each frontier entry.

    One gather of the packed ``(lo, hi)`` box array replaces two separate
    gather+evaluate passes.  The reduction is ``np.sum`` over ``d * d`` —
    NOT einsum, whose FMA kernels round differently: bound-pair
    candidates sit at *exactly* the initial radius, so a 1-ULP drift here
    flips inclusive ``<=`` pruning decisions and loses exact candidates.
    This matches :func:`~repro.geometry.distance.point_box_sq` bit for
    bit (``maximum`` is exact, so the fold order change is immaterial).
    """
    c2 = np.stack([l_child, r_child], axis=1)
    cbox = boxes[c2]  # (k, 2, 2, d)
    p = qp[:, None, :]
    d = np.maximum(cbox[:, :, 0] - p, p - cbox[:, :, 1])
    np.maximum(d, 0.0, out=d)
    return c2, np.sum(d * d, axis=-1)


def _seed_from_plan(
    ws: TraversalWorkspace,
    bvh: BVH,
    local: CostCounters,
    stack: np.ndarray,
    dstack: np.ndarray,
    sp: np.ndarray,
    radius: np.ndarray,
    query_labels: Optional[np.ndarray],
    node_labels: Optional[np.ndarray],
    query_core_sq: Optional[np.ndarray],
    exclude_position: Optional[np.ndarray],
) -> None:
    """Seed per-lane stacks from the tree's precomputed query plan.

    Lane ``i``'s stack receives every admissible path sibling (bound
    within the initial radius, component label differing, not the
    excluded single-point leaf) plus its own leaf, deepest on top.  The
    seeded set is a superset of the subtrees a top-down traversal would
    enter, tested on identical float values, so results are exact; the
    pop re-test prunes the rest as the radius shrinks.
    """
    plan, built = ws.plan_for(bvh)
    if built:
        local.box_distance_evals += plan.build_box_evals
    sib = plan.sib_nodes
    if query_core_sq is None:
        adm = plan.sib_dist <= radius[:, None]
    else:
        adm = np.maximum(plan.sib_dist, query_core_sq[:, None]) \
            <= radius[:, None]
    adm &= plan.valid  # pads carry inf, but inf <= inf is True
    if query_labels is not None:
        adm &= node_labels[plan.safe_nodes] != query_labels[:, None]
    if exclude_position is not None:
        adm &= ~single_leaf_excluded(bvh, sib, sib >= bvh.leaf_base,
                                     exclude_position[:, None])
    local.record_bulk(adm.size, ops_per_item=3.0, bytes_per_item=16.0)
    cols = np.cumsum(adm, axis=1)
    sp[:] = cols[:, -1]
    lane_idx, col_idx = np.nonzero(adm)
    dest = cols[lane_idx, col_idx] - 1
    stack[lane_idx, dest] = sib[lane_idx, col_idx].astype(np.int32)
    dstack[lane_idx, dest] = plan.sib_dist[lane_idx, col_idx]
    local.stack_ops += lane_idx.size


def nearest_wavefront(
    bvh: BVH,
    query_points: np.ndarray,
    *,
    query_labels: Optional[np.ndarray] = None,
    node_labels: Optional[np.ndarray] = None,
    point_labels: Optional[np.ndarray] = None,
    init_radius_sq: Optional[np.ndarray] = None,
    query_ids: Optional[np.ndarray] = None,
    point_ids: Optional[np.ndarray] = None,
    query_core_sq: Optional[np.ndarray] = None,
    point_core_sq: Optional[np.ndarray] = None,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    width: Optional[int] = None,
    workspace: Optional[TraversalWorkspace] = None,
    self_queries: bool = False,
) -> NearestResult:
    """Constrained nearest neighbor with multi-pop frontier drains.

    ``self_queries=True`` asserts the batch is exactly ``bvh.points`` in
    sorted order (lane ``i`` queries from sorted position ``i``); the
    kernel then seeds each lane's stack from the tree's precomputed
    :class:`~repro.bvh.plan.QueryPlan` instead of descending from the
    root — the big win for the Borůvka loop, which issues this identical
    batch every round.
    """
    query_points = validate_query_points(bvh, query_points)
    width = DEFAULT_WIDTH if width is None else width  # resolved per call
    if width < 1:
        raise InvalidInputError(f"width must be >= 1, got {width}")
    B = query_points.shape[0]
    if self_queries and B != bvh.n:
        raise InvalidInputError(
            "self_queries requires one lane per indexed point")
    leaf_base = bvh.leaf_base

    best_sq = np.full(B, np.inf)
    best_pos = np.full(B, -1, dtype=np.int64)
    best_key = np.full(B, _NO_KEY, dtype=np.uint64)
    radius = (np.full(B, np.inf) if init_radius_sq is None
              else np.asarray(init_radius_sq, dtype=np.float64).copy())
    if radius.shape != (B,):
        raise InvalidInputError("init_radius_sq must have one entry per query")

    use_labels = query_labels is not None
    plabels = resolve_point_labels(bvh, query_labels, node_labels,
                                   point_labels)
    use_mrd = query_core_sq is not None
    if use_mrd and point_core_sq is None:
        raise InvalidInputError("query_core_sq requires point_core_sq")
    use_keys = query_ids is not None
    if use_keys and point_ids is None:
        raise InvalidInputError("query_ids requires point_ids")

    trace = WarpTrace()
    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)

    def eval_leaves(cand_lane: np.ndarray, leaf_nodes: np.ndarray) -> None:
        """Blocked exact evaluation; ``cand_lane`` may repeat lanes."""
        local.leaf_visits += cand_lane.size
        lane, ppos = leaf_candidates(bvh, cand_lane, leaf_nodes)
        ok = np.ones(lane.size, dtype=bool)
        if use_labels:
            ok &= plabels[ppos] != query_labels[lane]
        if exclude_position is not None:
            ok &= ppos != exclude_position[lane]
        if not np.all(ok):
            lane = lane[ok]
            ppos = ppos[ok]
        if lane.size == 0:
            return
        d = points_sq(query_points[lane], bvh.points[ppos])
        if use_mrd:
            d = np.maximum(d, query_core_sq[lane])
            d = np.maximum(d, point_core_sq[ppos])
        local.distance_evals += lane.size
        # Admission: only candidates inside the current cutoff may win
        # (exact no-op for single-point leaves; see the reference engine).
        adm = d <= radius[lane]
        if not np.all(adm):
            lane = lane[adm]
            ppos = ppos[adm]
            d = d[adm]
        if lane.size == 0:
            return
        key = pair_keys(query_ids[lane], point_ids[ppos]) if use_keys else None
        update_nearest_best(best_sq, best_pos, best_key, radius,
                            lane, ppos, d, key, bvh.n)

    if bvh.n_leaves == 1:
        ok = np.ones(B, dtype=bool)
        if use_labels:
            ok &= node_labels[0] != query_labels
        sub = np.nonzero(ok)[0]
        if sub.size:
            eval_leaves(sub, np.zeros(sub.size, dtype=np.int64))
        return NearestResult(best_pos, best_sq, best_key)

    ws = workspace if workspace is not None else TraversalWorkspace()
    stack, dstack, sp = ws.stacks_for(B, max(bvh.height + 2, 4))
    if self_queries:
        _seed_from_plan(ws, bvh, local, stack, dstack, sp, radius,
                        query_labels, node_labels, query_core_sq,
                        exclude_position)
    else:
        stack[:, 0] = 0  # root
        # Seed the distance stack with the true root bound so pruning
        # decisions are bit-identical to the recomputing reference engine.
        dstack[:, 0] = point_box_sq(query_points, bvh.lo[0], bvh.hi[0])
        local.box_distance_evals += B
        sp[:] = 1
        if use_labels:
            sp[node_labels[0] == query_labels] = 0

    left, right = bvh.left, bvh.right
    boxes = ws.boxes_for(bvh)
    single_leaves = bvh.n_leaves == bvh.n

    # Lanes only ever *leave* the active set (a push in this drain can
    # only refill a lane that was drained this same iteration, and the
    # filter runs before the next drain), so the set is maintained
    # incrementally — tail iterations cost O(active), not O(batch).
    lanes = np.nonzero(sp > 0)[0]

    while True:
        lanes = lanes[sp[lanes] > 0]
        if lanes.size == 0:
            break
        trace.step_lanes(lanes)

        w_eff = _effective_width(lanes.size, width)
        lane_of, node, d_node = _drain(stack, dstack, sp, lanes, w_eff)
        total = lane_of.size
        local.nodes_visited += total
        local.stack_ops += total

        # Re-test every drained entry against the radius as of this drain
        # (Algorithm 2, line 9) — on the remembered bound, no recompute.
        keep = d_node <= radius[lane_of]
        if not np.any(keep):
            continue
        lane_of = lane_of[keep]
        node = node[keep]
        if self_queries:
            # Seeded stacks hold leaf siblings; evaluate them directly.
            leaf_pop = node >= leaf_base
            if np.any(leaf_pop):
                eval_leaves(lane_of[leaf_pop], node[leaf_pop])
                inner = ~leaf_pop
                lane_of = lane_of[inner]
                node = node[inner]
                if lane_of.size == 0:
                    continue
        qp = query_points[lane_of]
        rad = radius[lane_of]

        l_child = left[node]
        r_child = right[node]
        c2, dlr = _children_box_sq(boxes, l_child, r_child, qp)
        dl = dlr[:, 0]
        dr = dlr[:, 1]
        local.box_distance_evals += 2 * lane_of.size
        if use_mrd:
            # mrd(u, v) >= core(u): tighten the subtree lower bound.
            qc = query_core_sq[lane_of]
            ok_lr = np.maximum(dlr, qc[:, None]) <= rad[:, None]
        else:
            ok_lr = dlr <= rad[:, None]
        if use_labels:
            qlab = query_labels[lane_of]
            ok_lr &= node_labels[c2] != qlab[:, None]
        ok_l = ok_lr[:, 0]
        ok_r = ok_lr[:, 1]

        leaf_l = l_child >= leaf_base
        leaf_r = r_child >= leaf_base
        if exclude_position is not None:
            excl = exclude_position[lane_of]
            if single_leaves:
                ok_l &= ~(leaf_l & (l_child - leaf_base == excl))
                ok_r &= ~(leaf_r & (r_child - leaf_base == excl))
            else:
                ok_l &= ~single_leaf_excluded(bvh, l_child, leaf_l, excl)
                ok_r &= ~single_leaf_excluded(bvh, r_child, leaf_r, excl)

        take_l = ok_l & leaf_l
        take_r = ok_r & leaf_r
        if np.any(take_l) or np.any(take_r):
            eval_leaves(
                np.concatenate([lane_of[take_l], lane_of[take_r]]),
                np.concatenate([l_child[take_l], r_child[take_r]]))

        push_l = ok_l & ~leaf_l
        push_r = ok_r & ~leaf_r
        both = push_l & push_r
        any_push = push_l | push_r
        if not np.any(any_push):
            continue
        near_is_l = dl <= dr
        far = np.where(near_is_l, r_child, l_child)
        far_d = np.where(near_is_l, dr, dl)
        near = np.where(near_is_l, l_child, r_child)
        near_d = np.where(near_is_l, dl, dr)
        first = np.where(both, far, np.where(push_l, l_child, r_child))
        first_d = np.where(both, far_d, np.where(push_l, dl, dr))
        stack, dstack, pushed = _scatter_pushes(
            ws, stack, dstack, sp, B, lane_of, any_push, both,
            first, near, first_d, near_d, unique_lanes=w_eff == 1)
        local.stack_ops += pushed

    trace.flush(local)
    return NearestResult(best_pos, best_sq, best_key)


def knn_wavefront(
    bvh: BVH,
    query_points: np.ndarray,
    k: int,
    *,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    width: Optional[int] = None,
    workspace: Optional[TraversalWorkspace] = None,
    self_queries: bool = False,
) -> KnnResult:
    """k nearest neighbors with multi-pop frontier drains.

    ``self_queries=True`` (batch == ``bvh.points`` in sorted order) seeds
    each lane's stack from the precomputed query plan, deepest subtree on
    top: the lane's own neighborhood is evaluated first, the k-list
    fills with near hits, and the remembered bounds prune the rest at
    pop time — the core-distance pass shares the plan the Borůvka rounds
    build.
    """
    query_points = validate_query_points(bvh, query_points)
    if k < 1:
        raise InvalidInputError(f"k must be >= 1, got {k}")
    width = DEFAULT_WIDTH if width is None else width  # resolved per call
    if width < 1:
        raise InvalidInputError(f"width must be >= 1, got {width}")
    B = query_points.shape[0]
    if self_queries and B != bvh.n:
        raise InvalidInputError(
            "self_queries requires one lane per indexed point")
    leaf_base = bvh.leaf_base

    kbest = np.full((B, k), np.inf)
    kpos = np.full((B, k), -1, dtype=np.int64)

    trace = WarpTrace()
    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)

    def eval_leaves(cand_lane: np.ndarray, leaf_nodes: np.ndarray) -> None:
        local.leaf_visits += cand_lane.size
        lane, ppos = leaf_candidates(bvh, cand_lane, leaf_nodes)
        if exclude_position is not None:
            ok = ppos != exclude_position[lane]
            lane = lane[ok]
            ppos = ppos[ok]
        if lane.size == 0:
            return
        d = points_sq(query_points[lane], bvh.points[ppos])
        local.distance_evals += lane.size
        improving = d < kbest[lane, -1]
        if not np.any(improving):
            return
        merge_k_best(kbest, kpos, lane[improving], ppos[improving],
                     d[improving], k)

    if bvh.n_leaves == 1:
        eval_leaves(np.arange(B, dtype=np.int64),
                    np.zeros(B, dtype=np.int64))
        return KnnResult(kpos, kbest)

    ws = workspace if workspace is not None else TraversalWorkspace()
    stack, dstack, sp = ws.stacks_for(B, max(bvh.height + 2, 4))
    if self_queries:
        _seed_from_plan(ws, bvh, local, stack, dstack, sp,
                        kbest[:, -1], None, None, None, exclude_position)
    else:
        stack[:, 0] = 0
        dstack[:, 0] = point_box_sq(query_points, bvh.lo[0], bvh.hi[0])
        local.box_distance_evals += B
        sp[:] = 1
    left, right = bvh.left, bvh.right
    boxes = ws.boxes_for(bvh)
    single_leaves = bvh.n_leaves == bvh.n
    lanes = np.nonzero(sp > 0)[0]

    while True:
        lanes = lanes[sp[lanes] > 0]
        if lanes.size == 0:
            break
        trace.step_lanes(lanes)

        w_eff = _effective_width(lanes.size, width)
        lane_of, node, d_node = _drain(stack, dstack, sp, lanes, w_eff)
        total = lane_of.size
        local.nodes_visited += total
        local.stack_ops += total

        keep = d_node <= kbest[lane_of, -1]
        if not np.any(keep):
            continue
        lane_of = lane_of[keep]
        node = node[keep]
        if self_queries:
            # Seeded stacks hold leaf siblings; evaluate them directly.
            leaf_pop = node >= leaf_base
            if np.any(leaf_pop):
                eval_leaves(lane_of[leaf_pop], node[leaf_pop])
                inner = ~leaf_pop
                lane_of = lane_of[inner]
                node = node[inner]
                if lane_of.size == 0:
                    continue
        qp = query_points[lane_of]
        rad = kbest[lane_of, -1]

        l_child = left[node]
        r_child = right[node]
        c2, dlr = _children_box_sq(boxes, l_child, r_child, qp)
        dl = dlr[:, 0]
        dr = dlr[:, 1]
        local.box_distance_evals += 2 * lane_of.size

        ok_l = dl <= rad
        ok_r = dr <= rad
        leaf_l = l_child >= leaf_base
        leaf_r = r_child >= leaf_base
        if exclude_position is not None:
            excl = exclude_position[lane_of]
            if single_leaves:
                ok_l &= ~(leaf_l & (l_child - leaf_base == excl))
                ok_r &= ~(leaf_r & (r_child - leaf_base == excl))
            else:
                ok_l &= ~single_leaf_excluded(bvh, l_child, leaf_l, excl)
                ok_r &= ~single_leaf_excluded(bvh, r_child, leaf_r, excl)

        take_l = ok_l & leaf_l
        take_r = ok_r & leaf_r
        if np.any(take_l) or np.any(take_r):
            eval_leaves(
                np.concatenate([lane_of[take_l], lane_of[take_r]]),
                np.concatenate([l_child[take_l], r_child[take_r]]))

        push_l = ok_l & ~leaf_l
        push_r = ok_r & ~leaf_r
        both = push_l & push_r
        any_push = push_l | push_r
        if not np.any(any_push):
            continue
        near_is_l = dl <= dr
        far = np.where(near_is_l, r_child, l_child)
        far_d = np.where(near_is_l, dr, dl)
        near = np.where(near_is_l, l_child, r_child)
        near_d = np.where(near_is_l, dl, dr)
        first = np.where(both, far, np.where(push_l, l_child, r_child))
        first_d = np.where(both, far_d, np.where(push_l, dl, dr))
        stack, dstack, pushed = _scatter_pushes(
            ws, stack, dstack, sp, B, lane_of, any_push, both,
            first, near, first_d, near_d, unique_lanes=w_eff == 1)
        local.stack_ops += pushed

    trace.flush(local)
    return KnnResult(kpos, kbest)


def radius_wavefront(
    bvh: BVH,
    query_points: np.ndarray,
    radius: float,
    *,
    counters: Optional[CostCounters] = None,
    width: Optional[int] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All indexed points within ``radius``, multi-pop frontier drains.

    The cutoff is fixed, so pushed children are already final — no
    distance stack and no re-test, mirroring the reference kernel.
    """
    query_points = validate_query_points(bvh, query_points)
    if radius < 0:
        raise InvalidInputError(f"radius must be >= 0, got {radius}")
    width = DEFAULT_WIDTH if width is None else width  # resolved per call
    if width < 1:
        raise InvalidInputError(f"width must be >= 1, got {width}")
    B = query_points.shape[0]
    r_sq = float(radius) * float(radius)
    leaf_base = bvh.leaf_base

    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)
    trace = WarpTrace()

    found_q: List[np.ndarray] = []
    found_p: List[np.ndarray] = []

    def emit(cand_lane: np.ndarray, leaf_nodes: np.ndarray) -> None:
        local.leaf_visits += cand_lane.size
        lane, ppos = leaf_candidates(bvh, cand_lane, leaf_nodes)
        d = points_sq(query_points[lane], bvh.points[ppos])
        local.distance_evals += lane.size
        hit = d <= r_sq
        if np.any(hit):
            found_q.append(lane[hit])
            found_p.append(ppos[hit])

    if bvh.n_leaves == 1:
        emit(np.arange(B, dtype=np.int64), np.zeros(B, dtype=np.int64))
    else:
        ws = workspace if workspace is not None else TraversalWorkspace()
        stack, sp = ws.stack_for(B, max(bvh.height + 2, 4))
        stack[:, 0] = 0
        sp[:] = 1
        left, right = bvh.left, bvh.right
        boxes = ws.boxes_for(bvh)
        lanes = np.nonzero(sp > 0)[0]
        while True:
            lanes = lanes[sp[lanes] > 0]
            if lanes.size == 0:
                break
            trace.step_lanes(lanes)

            w_eff = _effective_width(lanes.size, width)
            lane_of, node, _ = _drain(stack, None, sp, lanes, w_eff)
            total = lane_of.size
            local.nodes_visited += total
            local.stack_ops += total
            qp = query_points[lane_of]

            l_child = left[node]
            r_child = right[node]
            c2, dlr = _children_box_sq(boxes, l_child, r_child, qp)
            dl = dlr[:, 0]
            dr = dlr[:, 1]
            local.box_distance_evals += 2 * total
            ok_l = dl <= r_sq
            ok_r = dr <= r_sq
            leaf_l = l_child >= leaf_base
            leaf_r = r_child >= leaf_base

            take_l = ok_l & leaf_l
            take_r = ok_r & leaf_r
            if np.any(take_l) or np.any(take_r):
                emit(np.concatenate([lane_of[take_l], lane_of[take_r]]),
                     np.concatenate([l_child[take_l], r_child[take_r]]))

            push_l = ok_l & ~leaf_l
            push_r = ok_r & ~leaf_r
            both = push_l & push_r
            any_push = push_l | push_r
            if not np.any(any_push):
                continue
            first = np.where(push_l, l_child, r_child)
            stack, _, pushed = _scatter_pushes(
                ws, stack, None, sp, B, lane_of, any_push, both,
                first, r_child, None, None, unique_lanes=w_eff == 1)
            local.stack_ops += pushed
        trace.flush(local)

    if found_q:
        q_all = np.concatenate(found_q)
        p_all = np.concatenate(found_p)
        order = np.argsort(q_all, kind="stable")
        q_all = q_all[order]
        p_all = p_all[order]
    else:
        q_all = np.empty(0, dtype=np.int64)
        p_all = np.empty(0, dtype=np.int64)
    counts = np.bincount(q_all, minlength=B)
    offsets = np.zeros(B + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, p_all, q_all
