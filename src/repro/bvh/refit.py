"""Bottom-up passes over the LBVH: level schedule and bounding-box refit.

The GPU construction fills internal-node boxes bottom-up with atomic
"second-arriving thread proceeds" flags.  The NumPy equivalent computes a
*level schedule* once — internal nodes grouped by height above the leaves —
and then processes one level per vectorized pass.  The same schedule drives
the per-iteration component-label reduction of the EMST algorithm
(:mod:`repro.core.labels`), which is exactly the paper's ``reduceLabels``
bottom-up traversal reused.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters


def bottom_up_schedule(left: np.ndarray, right: np.ndarray,
                       n: int) -> List[np.ndarray]:
    """Internal nodes grouped by height (leaves' parents first).

    ``schedule[h]`` contains every internal node whose children are all
    either leaves or internal nodes from earlier groups.  Processing groups
    in order guarantees children are finalized before their parent.
    """
    if n < 2:
        raise InvalidInputError("schedule requires n >= 2")
    n_internal = n - 1
    leaf_base = n - 1
    ready = np.zeros(n_internal, dtype=bool)

    def child_ready(child: np.ndarray) -> np.ndarray:
        is_leaf = child >= leaf_base
        return is_leaf | ready[np.minimum(child, n_internal - 1)]

    schedule: List[np.ndarray] = []
    remaining = n_internal
    while remaining > 0:
        frontier = ~ready & child_ready(left) & child_ready(right)
        ids = np.nonzero(frontier)[0]
        if ids.size == 0:
            raise InvalidInputError(
                "hierarchy contains a cycle or unreachable node")
        schedule.append(ids)
        ready[ids] = True
        remaining -= ids.size
    return schedule


def refit_bounds(
    points: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    schedule: List[np.ndarray],
    counters: Optional[CostCounters] = None,
    *,
    leaf_start: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute node bounding boxes ``(lo, hi)`` for all ``2m - 1`` nodes.

    ``points`` must be in sorted (leaf) order.  With ``leaf_start`` given,
    leaf ``j`` covers sorted positions ``leaf_start[j]`` up to the next
    block start and gets the union box of its block; without it every leaf
    is one point and gets a degenerate box.  Each internal node is the
    union of its children, processed level by level.
    """
    points = np.asarray(points, dtype=np.float64)
    n, dim = points.shape
    if leaf_start is None:
        m = n
        leaf_lo = points
        leaf_hi = points
    else:
        m = leaf_start.shape[0]
        leaf_lo = np.minimum.reduceat(points, leaf_start, axis=0)
        leaf_hi = np.maximum.reduceat(points, leaf_start, axis=0)
    leaf_base = m - 1
    lo = np.empty((2 * m - 1, dim), dtype=np.float64)
    hi = np.empty((2 * m - 1, dim), dtype=np.float64)
    lo[leaf_base:] = leaf_lo
    hi[leaf_base:] = leaf_hi
    for ids in schedule:
        l_ids = left[ids]
        r_ids = right[ids]
        lo[ids] = np.minimum(lo[l_ids], lo[r_ids])
        hi[ids] = np.maximum(hi[l_ids], hi[r_ids])
    if counters is not None:
        counters.record_bulk(n - 1, ops_per_item=4.0 * dim,
                             bytes_per_item=4.0 * dim * 8.0)
    return lo, hi
