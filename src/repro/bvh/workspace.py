"""Reusable scratch memory for the wavefront traversal kernels.

Every batched traversal needs the same transient arrays: a per-lane
traversal stack, stack pointers, and assorted per-lane / per-candidate
scratch.  Allocating them anew for every kernel launch is pure overhead —
the Borůvka loop launches one traversal per round over the same batch
width, and a serving worker launches thousands over similarly-sized jobs.

:class:`TraversalWorkspace` is a tiny arena: named buffers that grow
monotonically and are handed out as views.  A workspace is *not* thread
safe — it models the per-stream scratch memory a GPU implementation would
allocate once per worker; give each worker thread its own (see
:func:`repro.service.executor.execute_spec`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np


class TraversalWorkspace:
    """Grow-only arena of named scratch arrays for traversal kernels.

    Buffers are keyed by name and dtype; a request is served from the
    existing allocation when it is large enough, otherwise the buffer is
    reallocated (with headroom) and the old one dropped.  Returned arrays
    are *views* of arena memory: valid until the next request for the same
    name, never guaranteed to be zeroed.
    """

    #: Growth factor applied on reallocation so repeated near-miss sizes
    #: don't trigger a realloc cascade.
    _HEADROOM = 1.25

    def __init__(self) -> None:
        self._flat: Dict[str, np.ndarray] = {}
        self._stack: np.ndarray = np.empty((0, 0), dtype=np.int32)
        self._dist: np.ndarray = np.empty((0, 0), dtype=np.float64)
        #: Single-slot cache of the current tree's self-query plan,
        #: ``(bvh_uid, QueryPlan)`` — one plan serves every Borůvka round
        #: and the core-distance pass over the same tree.
        self._plan = None
        #: Single-slot cache of the current tree's fused ``(lo, hi)``
        #: box array, ``(bvh_uid, ndarray)`` — rebuilt per tree, not per
        #: kernel launch.
        self._boxes = None
        #: Number of (re)allocations performed, for tests and diagnostics.
        self.allocations = 0

    # ----------------------------------------------------------- query plans

    def plan_for(self, bvh):
        """The tree's :class:`~repro.bvh.plan.QueryPlan`, built on miss.

        Returns ``(plan, built)`` — ``built`` tells the caller to charge
        the plan's construction work to its counters.  Single-slot cache:
        a workspace follows one job (hence one tree) at a time.
        """
        from repro.bvh.plan import build_query_plan
        if self._plan is not None and self._plan[0] == bvh.uid:
            return self._plan[1], False
        plan = build_query_plan(bvh)
        self._plan = (bvh.uid, plan)
        self.allocations += 1
        return plan, True

    def boxes_for(self, bvh) -> np.ndarray:
        """The tree's packed ``(2m-1, 2, d)`` box array, cached per tree.

        One gather of this array fetches a node's ``lo`` and ``hi``
        together; the copy is a pure function of the immutable tree, so
        it is built once per tree rather than once per kernel launch.
        """
        if self._boxes is not None and self._boxes[0] == bvh.uid:
            return self._boxes[1]
        boxes = np.stack([bvh.lo, bvh.hi], axis=1)
        self._boxes = (bvh.uid, boxes)
        self.allocations += 1
        return boxes

    # ------------------------------------------------------------- flat view

    def take(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """A ``(size,)`` view of the arena buffer ``name``.

        Contents are unspecified; callers must fully initialize what they
        read.  Requesting a name again invalidates the previous view.
        """
        buf = self._flat.get(name)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            cap = max(int(size * self._HEADROOM), size, 16)
            buf = np.empty(cap, dtype=dtype)
            self._flat[name] = buf
            self.allocations += 1
        return buf[:size]

    # ----------------------------------------------------- traversal stacks

    def stack_for(self, batch: int, depth: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-lane traversal stack ``(batch, >= depth)`` plus pointers.

        The stack keeps its full column capacity (callers may push past
        ``depth`` up to the allocated width and call :meth:`grow_stack`
        beyond that); the stack pointer view is zeroed.
        """
        stack, _, sp = self.stacks_for(batch, depth, with_dist=False)
        return stack, sp

    def stacks_for(self, batch: int, depth: int, *, with_dist: bool = True
                   ) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
        """Node stack, optional aligned distance stack, and zeroed pointers.

        The distance stack carries each pushed node's point-box lower
        bound, so the wavefront re-test is a comparison instead of a
        recomputed box distance.
        """
        rows, cols = self._stack.shape
        if rows < batch or cols < depth:
            new_rows = max(rows, batch)
            new_cols = max(cols, depth)
            self._stack = np.empty((new_rows, new_cols), dtype=np.int32)
            self.allocations += 1
        dist = None
        if with_dist:
            if self._dist.shape[0] < self._stack.shape[0] \
                    or self._dist.shape[1] < self._stack.shape[1]:
                self._dist = np.empty(self._stack.shape, dtype=np.float64)
                self.allocations += 1
            dist = self._dist[:batch]
        sp = self.take("__sp__", batch, np.int64)
        sp[:] = 0
        return self._stack[:batch], dist, sp

    def grow_stack(self, batch: int, depth: int,
                   stack: np.ndarray, sp: np.ndarray,
                   dist: Optional[np.ndarray] = None,
                   ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Widen the stacks to ``depth`` columns, preserving live entries.

        Multi-pop traversal can transiently need more stack than the
        single-pop bound of ``height + 2``; growth doubles so it amortizes.
        """
        rows, cols = self._stack.shape
        live_rows = stack.shape[0]
        if cols < depth:
            new_cols = max(depth, 2 * cols)
            grown = np.empty((max(rows, batch), new_cols), dtype=np.int32)
            grown[:live_rows, :cols] = self._stack[:live_rows]
            self._stack = grown
            self.allocations += 1
            if dist is not None:
                grown_d = np.empty(grown.shape, dtype=np.float64)
                grown_d[:live_rows, :cols] = self._dist[:live_rows, :cols]
                self._dist = grown_d
                self.allocations += 1
        out_dist = self._dist[:batch] if dist is not None else None
        return self._stack[:batch], out_dist

    # -------------------------------------------------------------- metrics

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return self._stack.nbytes + sum(b.nbytes for b in self._flat.values())
