"""Karras' fully parallel LBVH hierarchy construction.

Given Morton codes sorted along the Z-curve, every internal node's vertex
range, split position and children can be computed *independently* — this is
what makes the construction GPU-friendly [Karras 2012].  The vectorized
implementation runs the per-node binary searches for all ``n - 1`` internal
nodes in lock-step NumPy passes (``O(log n)`` passes of ``O(n)`` work).

Duplicate Morton codes are handled by the index tie-break inside
:func:`repro.geometry.morton.common_prefix_length`, which conceptually
appends the leaf index to the code — deltas are then strictly decreasing
away from any position and the produced hierarchy is a well-formed binary
tree for any input, including all-identical points.

Node id convention (shared across the package): internal nodes ``0..n-2``
(root 0), leaf for sorted position ``i`` is node ``n - 1 + i``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.geometry.morton import common_prefix_length, common_prefix_length_high
from repro.kokkos.counters import CostCounters


def karras_hierarchy(
    codes: np.ndarray, counters: Optional[CostCounters] = None,
    *, codes_lo: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Children and parents of the LBVH over sorted ``codes``.

    Returns ``(left, right, parent)``:

    * ``left``/``right``: node ids of the children of internal node ``t``,
      for ``t`` in ``0..n-2`` (ids ``>= n-1`` denote leaves).
    * ``parent``: parent node id for all ``2n-1`` nodes (root's is -1).

    ``codes_lo`` enables double-width (128-bit) codes: ``codes`` then holds
    the high word and the pair must be lexicographically sorted — the
    paper's proposed fix for Z-curve under-resolution (Section 4.1).

    Requires ``n >= 2``; callers special-case single-point inputs.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    n = codes.shape[0]
    if n < 2:
        raise InvalidInputError("hierarchy construction requires n >= 2")
    if codes_lo is None:
        if np.any(codes[:-1] > codes[1:]):
            raise InvalidInputError("Morton codes must be sorted")

        def _delta(c, i, j):
            return common_prefix_length(c, i, j)
    else:
        codes_lo = np.asarray(codes_lo, dtype=np.uint64)
        if codes_lo.shape != codes.shape:
            raise InvalidInputError("hi/lo code arrays must match in shape")
        order_ok = (codes[:-1] < codes[1:]) | (
            (codes[:-1] == codes[1:]) & (codes_lo[:-1] <= codes_lo[1:]))
        if not np.all(order_ok):
            raise InvalidInputError("(hi, lo) codes must be lexsorted")

        def _delta(c, i, j):
            return common_prefix_length_high(c, codes_lo, i, j)

    t = np.arange(n - 1, dtype=np.int64)

    # Direction of each node's range: towards the neighbour with the longer
    # common prefix.  The index tie-break guarantees the deltas differ.
    d_plus = _delta(codes, t, t + 1)
    d_minus = _delta(codes, t, t - 1)
    direction = np.where(d_plus > d_minus, 1, -1).astype(np.int64)
    delta_min = np.where(direction == 1, d_minus, d_plus)

    # Exponential search for an upper bound on the range length.
    lmax = np.full(n - 1, 2, dtype=np.int64)
    active = _delta(codes, t, t + lmax * direction) > delta_min
    while np.any(active):
        lmax[active] *= 2
        active = _delta(codes, t, t + lmax * direction) > delta_min
    # Binary search for the exact range length l.
    length = np.zeros(n - 1, dtype=np.int64)
    step = lmax // 2
    while np.any(step >= 1):
        live = step >= 1
        probe = length + np.where(live, step, 0)
        ok = live & (_delta(codes, t, t + probe * direction) > delta_min)
        length = np.where(ok, probe, length)
        step //= 2
    other_end = t + length * direction

    # Binary search for the split position inside [t, other_end].
    delta_node = _delta(codes, t, other_end)
    split_offset = np.zeros(n - 1, dtype=np.int64)
    step = (length + 1) // 2
    done = length == 0  # cannot happen, but keeps the loop well-defined
    while True:
        probe = split_offset + step
        ok = ~done & (_delta(codes, t, t + probe * direction) > delta_node)
        split_offset = np.where(ok, probe, split_offset)
        finished = step <= 1
        if np.all(finished | done):
            break
        step = np.where(finished, step, (step + 1) // 2)
        # Once a lane's step reaches 1 it has performed its last probe.
        done = done | finished

    gamma = t + split_offset * direction + np.minimum(direction, 0)

    range_lo = np.minimum(t, other_end)
    range_hi = np.maximum(t, other_end)
    leaf_base = n - 1
    left = np.where(range_lo == gamma, leaf_base + gamma, gamma)
    right = np.where(range_hi == gamma + 1, leaf_base + gamma + 1, gamma + 1)

    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    parent[left] = t
    parent[right] = t

    if counters is not None:
        # One thread per internal node, O(log n) probes each.
        log_n = max(int(np.ceil(np.log2(n))), 1)
        counters.record_bulk(n - 1, ops_per_item=12.0 * log_n,
                             bytes_per_item=48.0)
    return left, right, parent


def karras_hierarchy_scalar(codes) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference per-node implementation of :func:`karras_hierarchy`.

    Follows Karras' pseudo-code literally, one internal node at a time.
    Used only by the test suite to validate the vectorized construction.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    n = codes.shape[0]
    if n < 2:
        raise InvalidInputError("hierarchy construction requires n >= 2")

    def delta(i: int, j: int) -> int:
        if j < 0 or j >= n:
            return -1
        return int(common_prefix_length(codes, np.array([i]),
                                        np.array([j]))[0])

    left = np.zeros(n - 1, dtype=np.int64)
    right = np.zeros(n - 1, dtype=np.int64)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    for i in range(n - 1):
        d = 1 if delta(i, i + 1) > delta(i, i - 1) else -1
        delta_min = delta(i, i - d)
        lmax = 2
        while delta(i, i + lmax * d) > delta_min:
            lmax *= 2
        length = 0
        step = lmax // 2
        while step >= 1:
            if delta(i, i + (length + step) * d) > delta_min:
                length += step
            step //= 2
        j = i + length * d
        delta_node = delta(i, j)
        s = 0
        step = (length + 1) // 2
        while True:
            if delta(i, i + (s + step) * d) > delta_node:
                s += step
            if step <= 1:
                break
            step = (step + 1) // 2
        gamma = i + s * d + min(d, 0)
        lo, hi = min(i, j), max(i, j)
        left[i] = (n - 1) + gamma if lo == gamma else gamma
        right[i] = (n - 1) + gamma + 1 if hi == gamma + 1 else gamma + 1
        parent[left[i]] = i
        parent[right[i]] = i
    return left, right, parent
