"""Shared machinery of the batched traversal kernels.

Both traversal engines — the production :mod:`repro.bvh.wavefront`
multi-pop kernels and the single-pop :mod:`repro.bvh.reference` kernels the
tests compare against — share their result types, the tie-break key
encoding, argument validation, and the vectorized building blocks for
blocked-leaf evaluation (block expansion, per-lane segmented reductions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.bvh.bvh import BVH
from repro.errors import InvalidInputError

#: Label value meaning "subtree spans multiple components" (never skipped).
INVALID_LABEL = -1

_KEY_SHIFT = np.uint64(32)
_NO_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)


def pair_keys(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Total-order tie-break key for the undirected edge ``(a, b)``.

    Encodes ``(min, max)`` into one uint64 so lexicographic edge comparison
    becomes a single integer comparison.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return (lo << _KEY_SHIFT) | hi


@dataclass
class NearestResult:
    """Result of ``batched_nearest`` (positions are sorted positions)."""

    position: np.ndarray
    distance_sq: np.ndarray
    key: np.ndarray

    @property
    def found(self) -> np.ndarray:
        """Mask of queries that found any admissible neighbor."""
        return self.position >= 0


@dataclass
class KnnResult:
    """Result of ``batched_knn`` (positions are sorted positions).

    ``distance_sq[i, j]`` is the squared distance to the (j+1)-th nearest
    admissible point of query ``i``; unfilled slots are ``inf`` with
    position -1.
    """

    positions: np.ndarray
    distance_sq: np.ndarray

    @property
    def kth_distance_sq(self) -> np.ndarray:
        """Squared distance to the k-th neighbor (the core-distance column)."""
        return self.distance_sq[:, -1]


def validate_query_points(bvh: BVH, query_points: np.ndarray) -> np.ndarray:
    """Coerce and shape-check a query batch against the tree."""
    query_points = np.asarray(query_points, dtype=np.float64)
    if query_points.ndim != 2 or query_points.shape[1] != bvh.dim:
        raise InvalidInputError(
            f"query shape {query_points.shape} incompatible with d={bvh.dim}")
    return query_points


def resolve_point_labels(
    bvh: BVH,
    query_labels: Optional[np.ndarray],
    node_labels: Optional[np.ndarray],
    point_labels: Optional[np.ndarray],
) -> Optional[np.ndarray]:
    """Per-sorted-position labels backing the component constraint.

    With one-point leaves the leaf slice of ``node_labels`` *is* the
    per-point labels, so callers may omit ``point_labels`` (the historical
    signature).  Blocked trees lose that identity — a mixed block's leaf
    label is :data:`INVALID_LABEL` — so ``point_labels`` becomes mandatory.
    """
    if query_labels is None:
        return None
    if node_labels is None:
        raise InvalidInputError("query_labels requires node_labels")
    if point_labels is not None:
        point_labels = np.asarray(point_labels, dtype=np.int64)
        if point_labels.shape != (bvh.n,):
            raise InvalidInputError(
                f"point_labels must have shape ({bvh.n},), "
                f"got {point_labels.shape}")
        return point_labels
    if bvh.n_leaves == bvh.n:
        return np.asarray(node_labels[bvh.leaf_base:], dtype=np.int64)
    raise InvalidInputError(
        "trees with blocked leaves (leaf_size > 1) require point_labels")


def expand_blocks(bvh: BVH, block_idx: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten leaf blocks into per-point candidates.

    Returns ``(source, position)``: candidate ``i`` is the sorted position
    ``position[i]`` contributed by entry ``source[i]`` of ``block_idx``.
    Candidates of one block are consecutive and in sorted-position order.
    """
    cnt = bvh.leaf_count[block_idx]
    total = int(cnt.sum())
    source = np.repeat(np.arange(block_idx.size, dtype=np.int64), cnt)
    base = np.repeat(bvh.leaf_start[block_idx], cnt)
    ends = np.cumsum(cnt)
    offset = np.arange(total, dtype=np.int64) - np.repeat(ends - cnt, cnt)
    return source, base + offset


def update_nearest_best(
    best_sq: np.ndarray,
    best_pos: np.ndarray,
    best_key: Optional[np.ndarray],
    radius: np.ndarray,
    lane: np.ndarray,
    ppos: np.ndarray,
    d: np.ndarray,
    key: Optional[np.ndarray],
    n_sentinel: int,
) -> None:
    """Fold leaf candidates into the per-lane running best, in place.

    ``lane`` may repeat (one lane can contribute many candidates per
    drain).  Implemented as scatter-min passes (``np.minimum.at`` has a
    fast inner loop) instead of a per-candidate sort:

    * **keyed** — minimizes the total order ``(distance, pair key)``
      exactly: the incumbent competes through its stored key whenever its
      distance still ties the new minimum, so results are independent of
      candidate order (the property the EMST tie-breaks rely on);
    * **unkeyed** — a strictly closer candidate wins, the incumbent keeps
      exact ties, and simultaneous equal-distance candidates resolve to
      the smallest sorted position (deterministic).

    ``radius`` is tightened to the winning distance, matching the
    shrinking-cutoff of Algorithm 2.  ``n_sentinel`` must exceed every
    valid position (used to reset dethroned incumbents).
    """
    prev = best_sq[lane]
    np.minimum.at(best_sq, lane, d)
    cur = best_sq[lane]
    win = d == cur
    if key is not None:
        stale = cur < prev
        if np.any(stale):
            best_key[lane[stale]] = _NO_KEY
        np.minimum.at(best_key, lane[win], key[win])
        final = win & (key == best_key[lane])
        best_pos[lane[final]] = ppos[final]
        radius[lane[final]] = np.minimum(radius[lane[final]], d[final])
        return
    win &= d < prev
    if np.any(win):
        lanes_w = lane[win]
        best_pos[lanes_w] = n_sentinel
        np.minimum.at(best_pos, lanes_w, ppos[win])
        radius[lanes_w] = np.minimum(radius[lanes_w], d[win])


def merge_k_best(kbest: np.ndarray, kpos: np.ndarray, lane: np.ndarray,
                 ppos: np.ndarray, d: np.ndarray, k: int) -> None:
    """Merge candidate ``(lane, ppos, d)`` triples into the k-best rows.

    Candidates may repeat lanes; they are bucketed to at most ``k`` best
    per lane (only ``k`` can enter), scattered into a rectangle and merged
    with one stable row-wise argsort — existing entries win ties.
    """
    order = np.lexsort((d, lane))
    lane = lane[order]
    ppos = ppos[order]
    d = d[order]
    rank = segment_ranks(lane)
    keep = rank < k
    lane = lane[keep]
    ppos = ppos[keep]
    d = d[keep]
    rank = rank[keep]
    row_ids, row_of = np.unique(lane, return_inverse=True)
    cand_d = np.full((row_ids.size, k), np.inf)
    cand_p = np.full((row_ids.size, k), -1, dtype=np.int64)
    cand_d[row_of, rank] = d
    cand_p[row_of, rank] = ppos
    merged_d = np.concatenate([kbest[row_ids], cand_d], axis=1)
    merged_p = np.concatenate([kpos[row_ids], cand_p], axis=1)
    sel = np.argsort(merged_d, axis=1, kind="stable")[:, :k]
    take = np.arange(row_ids.size)[:, None]
    kbest[row_ids] = merged_d[take, sel]
    kpos[row_ids] = merged_p[take, sel]


def single_leaf_excluded(bvh: BVH, node: np.ndarray, leaf_mask: np.ndarray,
                         excl: np.ndarray) -> np.ndarray:
    """Mask of nodes that are single-point leaves == the excluded position.

    Shared by both engines (and the plan seeding): the admissibility rule
    must stay bit-identical for the byte-identity contract.  Broadcasts,
    so a ``(n, depth)`` node matrix against ``(n, 1)`` exclusions works.
    """
    block = np.maximum(node - bvh.leaf_base, 0)
    return (leaf_mask & (bvh.leaf_count[block] == 1)
            & (bvh.leaf_start[block] == excl))


def leaf_candidates(bvh: BVH, cand_lane: np.ndarray, leaf_nodes: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point candidates ``(lane, position)`` of ``(lane, leaf)`` visits.

    One-point-per-leaf trees short-circuit (a leaf's position *is*
    ``node - leaf_base``); blocked trees expand each visit to its block.
    """
    if bvh.n_leaves == bvh.n:
        return cand_lane, leaf_nodes - bvh.leaf_base
    src, ppos = expand_blocks(bvh, leaf_nodes - bvh.leaf_base)
    return cand_lane[src], ppos


def segment_ranks(sorted_groups: np.ndarray) -> np.ndarray:
    """0-based rank of each element within its (pre-sorted) group run."""
    size = sorted_groups.size
    if size == 0:
        return np.empty(0, dtype=np.int64)
    heads = np.ones(size, dtype=bool)
    heads[1:] = sorted_groups[1:] != sorted_groups[:-1]
    starts = np.nonzero(heads)[0]
    lengths = np.diff(np.append(starts, size))
    return np.arange(size, dtype=np.int64) - np.repeat(starts, lengths)
