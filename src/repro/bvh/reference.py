"""Reference single-pop traversal kernels (Algorithm 2, one node per step).

This is the original NumPy realization of ArborX's bulk search: every query
owns a traversal stack and all lanes advance together, popping exactly one
node and examining its two children per Python iteration.  It is kept as
the *semantic reference* for the production multi-pop kernels in
:mod:`repro.bvh.wavefront`: the property tests drive both engines over the
same adversarial inputs and assert identical results, and the ablation
benchmark quantifies the speedup of draining wider frontiers.

Both engines share one policy for blocked leaves (``leaf_size > 1``): a
leaf visit evaluates the whole block of exact distances, with per-point
admissibility (component labels, self-exclusion) masked *before* the
distance computation so ``distance_evals`` counts only admissible
candidates.  A single-point leaf that is exactly the excluded position is
still skipped at the node level, preserving the historical counter
accounting for ``leaf_size == 1`` trees.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.query import (
    _NO_KEY,
    KnnResult,
    NearestResult,
    leaf_candidates,
    merge_k_best,
    pair_keys,
    resolve_point_labels,
    single_leaf_excluded,
    update_nearest_best,
    validate_query_points,
)
from repro.bvh.workspace import TraversalWorkspace
from repro.errors import InvalidInputError
from repro.geometry.distance import point_box_sq, points_sq
from repro.kokkos.counters import CostCounters, WarpTrace


def _alloc_stack(bvh: BVH, batch: int,
                 workspace: Optional[TraversalWorkspace]
                 ) -> Tuple[np.ndarray, np.ndarray]:
    depth = max(bvh.height + 2, 4)
    if workspace is not None:
        return workspace.stack_for(batch, depth)
    stack = np.zeros((batch, depth), dtype=np.int32)
    sp = np.zeros(batch, dtype=np.int64)
    return stack, sp


def nearest_reference(
    bvh: BVH,
    query_points: np.ndarray,
    *,
    query_labels: Optional[np.ndarray] = None,
    node_labels: Optional[np.ndarray] = None,
    point_labels: Optional[np.ndarray] = None,
    init_radius_sq: Optional[np.ndarray] = None,
    query_ids: Optional[np.ndarray] = None,
    point_ids: Optional[np.ndarray] = None,
    query_core_sq: Optional[np.ndarray] = None,
    point_core_sq: Optional[np.ndarray] = None,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> NearestResult:
    """Constrained nearest neighbor, one popped node per lane per step."""
    query_points = validate_query_points(bvh, query_points)
    B = query_points.shape[0]
    leaf_base = bvh.leaf_base

    best_sq = np.full(B, np.inf)
    best_pos = np.full(B, -1, dtype=np.int64)
    best_key = np.full(B, _NO_KEY, dtype=np.uint64)
    radius = (np.full(B, np.inf) if init_radius_sq is None
              else np.asarray(init_radius_sq, dtype=np.float64).copy())
    if radius.shape != (B,):
        raise InvalidInputError("init_radius_sq must have one entry per query")

    use_labels = query_labels is not None
    plabels = resolve_point_labels(bvh, query_labels, node_labels,
                                   point_labels)
    use_mrd = query_core_sq is not None
    if use_mrd and point_core_sq is None:
        raise InvalidInputError("query_core_sq requires point_core_sq")
    use_keys = query_ids is not None
    if use_keys and point_ids is None:
        raise InvalidInputError("query_ids requires point_ids")

    trace = WarpTrace()
    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)

    def eval_leaves(sub: np.ndarray, leaf_nodes: np.ndarray) -> None:
        """Blocked exact evaluation of leaf candidates for lanes ``sub``."""
        local.leaf_visits += sub.size
        lane, ppos = leaf_candidates(bvh, sub, leaf_nodes)
        ok = np.ones(lane.size, dtype=bool)
        if use_labels:
            ok &= plabels[ppos] != query_labels[lane]
        if exclude_position is not None:
            ok &= ppos != exclude_position[lane]
        if not np.all(ok):
            lane = lane[ok]
            ppos = ppos[ok]
        if lane.size == 0:
            return
        d = points_sq(query_points[lane], bvh.points[ppos])
        if use_mrd:
            d = np.maximum(d, query_core_sq[lane])
            d = np.maximum(d, point_core_sq[ppos])
        local.distance_evals += lane.size
        # Admission: only candidates inside the current cutoff may win.
        # Exact no-op for single-point leaves (their box distance *is* the
        # point distance, so the node test already enforced it); for
        # blocked leaves it keeps the initial-radius contract tight.
        adm = d <= radius[lane]
        if not np.all(adm):
            lane = lane[adm]
            ppos = ppos[adm]
            d = d[adm]
        if lane.size == 0:
            return
        key = pair_keys(query_ids[lane], point_ids[ppos]) if use_keys else None
        update_nearest_best(best_sq, best_pos, best_key, radius,
                            lane, ppos, d, key, bvh.n)

    if bvh.n_leaves == 1:
        # Single-leaf tree: evaluate the lone block directly.
        ok = np.ones(B, dtype=bool)
        if use_labels:
            ok &= node_labels[0] != query_labels
        sub = np.nonzero(ok)[0]
        if sub.size:
            eval_leaves(sub, np.zeros(sub.size, dtype=np.int64))
        return NearestResult(best_pos, best_sq, best_key)

    stack, sp = _alloc_stack(bvh, B, workspace)
    stack[:, 0] = 0  # root
    sp[:] = 1
    if use_labels:
        # Lanes whose component spans the whole tree have nothing to find.
        sp[node_labels[0] == query_labels] = 0

    left, right = bvh.left, bvh.right
    lo, hi = bvh.lo, bvh.hi

    while True:
        active_mask = sp > 0
        lanes = np.nonzero(active_mask)[0]
        if lanes.size == 0:
            break
        trace.step(active_mask)

        sp[lanes] -= 1
        node = stack[lanes, sp[lanes]].astype(np.int64)
        qp = query_points[lanes]
        rad = radius[lanes]

        # Re-test the popped node: the radius may have shrunk since the
        # push (Algorithm 2, line 9).
        d_node = point_box_sq(qp, lo[node], hi[node])
        local.nodes_visited += lanes.size
        local.box_distance_evals += lanes.size
        local.stack_ops += lanes.size
        keep = d_node <= rad
        if not np.any(keep):
            continue
        lanes = lanes[keep]
        node = node[keep]
        qp = qp[keep]
        rad = rad[keep]

        l_child = left[node]
        r_child = right[node]
        dl = point_box_sq(qp, lo[l_child], hi[l_child])
        dr = point_box_sq(qp, lo[r_child], hi[r_child])
        local.box_distance_evals += 2 * lanes.size
        if use_mrd:
            # mrd(u, v) >= core(u): tighten the subtree lower bound.
            qc = query_core_sq[lanes]
            dl_bound = np.maximum(dl, qc)
            dr_bound = np.maximum(dr, qc)
        else:
            dl_bound = dl
            dr_bound = dr

        ok_l = dl_bound <= rad
        ok_r = dr_bound <= rad
        if use_labels:
            qlab = query_labels[lanes]
            ok_l &= node_labels[l_child] != qlab
            ok_r &= node_labels[r_child] != qlab

        leaf_l = l_child >= leaf_base
        leaf_r = r_child >= leaf_base
        if exclude_position is not None:
            excl = exclude_position[lanes]
            ok_l &= ~single_leaf_excluded(bvh, l_child, leaf_l, excl)
            ok_r &= ~single_leaf_excluded(bvh, r_child, leaf_r, excl)

        take_l = ok_l & leaf_l
        if np.any(take_l):
            eval_leaves(lanes[take_l], l_child[take_l])
        take_r = ok_r & leaf_r
        if np.any(take_r):
            eval_leaves(lanes[take_r], r_child[take_r])

        push_l = ok_l & ~leaf_l
        push_r = ok_r & ~leaf_r
        both = push_l & push_r
        near_is_l = dl <= dr
        far = np.where(near_is_l, r_child, l_child)
        near = np.where(near_is_l, l_child, r_child)
        first = np.where(both, far, np.where(push_l, l_child, r_child))

        any_push = push_l | push_r
        sub1 = lanes[any_push]
        stack[sub1, sp[sub1]] = first[any_push].astype(np.int32)
        sp[sub1] += 1
        sub2 = lanes[both]
        stack[sub2, sp[sub2]] = near[both].astype(np.int32)
        sp[sub2] += 1
        local.stack_ops += sub1.size + sub2.size

    trace.flush(local)
    return NearestResult(best_pos, best_sq, best_key)


def knn_reference(
    bvh: BVH,
    query_points: np.ndarray,
    k: int,
    *,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> KnnResult:
    """k nearest neighbors, one popped node per lane per step."""
    query_points = validate_query_points(bvh, query_points)
    if k < 1:
        raise InvalidInputError(f"k must be >= 1, got {k}")
    B = query_points.shape[0]
    leaf_base = bvh.leaf_base

    kbest = np.full((B, k), np.inf)
    kpos = np.full((B, k), -1, dtype=np.int64)

    trace = WarpTrace()
    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)

    def eval_leaves(sub: np.ndarray, leaf_nodes: np.ndarray) -> None:
        local.leaf_visits += sub.size
        lane, ppos = leaf_candidates(bvh, sub, leaf_nodes)
        if exclude_position is not None:
            ok = ppos != exclude_position[lane]
            lane = lane[ok]
            ppos = ppos[ok]
        if lane.size == 0:
            return
        d = points_sq(query_points[lane], bvh.points[ppos])
        local.distance_evals += lane.size
        improving = d < kbest[lane, -1]
        if not np.any(improving):
            return
        lane = lane[improving]
        ppos = ppos[improving]
        d = d[improving]
        merge_k_best(kbest, kpos, lane, ppos, d, k)

    if bvh.n_leaves == 1:
        eval_leaves(np.arange(B, dtype=np.int64),
                    np.zeros(B, dtype=np.int64))
        return KnnResult(kpos, kbest)

    stack, sp = _alloc_stack(bvh, B, workspace)
    stack[:, 0] = 0
    sp[:] = 1
    left, right = bvh.left, bvh.right
    lo, hi = bvh.lo, bvh.hi

    while True:
        active_mask = sp > 0
        lanes = np.nonzero(active_mask)[0]
        if lanes.size == 0:
            break
        trace.step(active_mask)

        sp[lanes] -= 1
        node = stack[lanes, sp[lanes]].astype(np.int64)
        qp = query_points[lanes]
        rad = kbest[lanes, -1]
        d_node = point_box_sq(qp, lo[node], hi[node])
        local.nodes_visited += lanes.size
        local.box_distance_evals += lanes.size
        local.stack_ops += lanes.size
        keep = d_node <= rad
        if not np.any(keep):
            continue
        lanes = lanes[keep]
        node = node[keep]
        qp = qp[keep]
        rad = rad[keep]

        l_child = left[node]
        r_child = right[node]
        dl = point_box_sq(qp, lo[l_child], hi[l_child])
        dr = point_box_sq(qp, lo[r_child], hi[r_child])
        local.box_distance_evals += 2 * lanes.size

        ok_l = dl <= rad
        ok_r = dr <= rad
        leaf_l = l_child >= leaf_base
        leaf_r = r_child >= leaf_base
        if exclude_position is not None:
            excl = exclude_position[lanes]
            ok_l &= ~single_leaf_excluded(bvh, l_child, leaf_l, excl)
            ok_r &= ~single_leaf_excluded(bvh, r_child, leaf_r, excl)

        take_l = ok_l & leaf_l
        if np.any(take_l):
            eval_leaves(lanes[take_l], l_child[take_l])
        take_r = ok_r & leaf_r
        if np.any(take_r):
            eval_leaves(lanes[take_r], r_child[take_r])

        push_l = ok_l & ~leaf_l
        push_r = ok_r & ~leaf_r
        both = push_l & push_r
        near_is_l = dl <= dr
        far = np.where(near_is_l, r_child, l_child)
        near = np.where(near_is_l, l_child, r_child)
        first = np.where(both, far, np.where(push_l, l_child, r_child))

        any_push = push_l | push_r
        sub1 = lanes[any_push]
        stack[sub1, sp[sub1]] = first[any_push].astype(np.int32)
        sp[sub1] += 1
        sub2 = lanes[both]
        stack[sub2, sp[sub2]] = near[both].astype(np.int32)
        sp[sub2] += 1
        local.stack_ops += sub1.size + sub2.size

    trace.flush(local)
    return KnnResult(kpos, kbest)


def radius_reference(
    bvh: BVH,
    query_points: np.ndarray,
    radius: float,
    *,
    counters: Optional[CostCounters] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All indexed points within ``radius``, one popped node per step."""
    query_points = validate_query_points(bvh, query_points)
    if radius < 0:
        raise InvalidInputError(f"radius must be >= 0, got {radius}")
    B = query_points.shape[0]
    r_sq = float(radius) * float(radius)
    leaf_base = bvh.leaf_base

    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)
    trace = WarpTrace()

    found_q: List[np.ndarray] = []
    found_p: List[np.ndarray] = []

    def emit(sub: np.ndarray, leaf_nodes: np.ndarray) -> None:
        local.leaf_visits += sub.size
        lane, ppos = leaf_candidates(bvh, sub, leaf_nodes)
        d = points_sq(query_points[lane], bvh.points[ppos])
        local.distance_evals += lane.size
        hit = d <= r_sq
        if np.any(hit):
            found_q.append(lane[hit])
            found_p.append(ppos[hit])

    if bvh.n_leaves == 1:
        emit(np.arange(B, dtype=np.int64), np.zeros(B, dtype=np.int64))
    else:
        stack, sp = _alloc_stack(bvh, B, workspace)
        stack[:, 0] = 0
        sp[:] = 1
        left, right = bvh.left, bvh.right
        lo, hi = bvh.lo, bvh.hi
        while True:
            active_mask = sp > 0
            lanes = np.nonzero(active_mask)[0]
            if lanes.size == 0:
                break
            trace.step(active_mask)
            sp[lanes] -= 1
            node = stack[lanes, sp[lanes]].astype(np.int64)
            local.nodes_visited += lanes.size
            local.stack_ops += lanes.size
            qp = query_points[lanes]

            l_child = left[node]
            r_child = right[node]
            dl = point_box_sq(qp, lo[l_child], hi[l_child])
            dr = point_box_sq(qp, lo[r_child], hi[r_child])
            local.box_distance_evals += 2 * lanes.size
            ok_l = dl <= r_sq
            ok_r = dr <= r_sq
            leaf_l = l_child >= leaf_base
            leaf_r = r_child >= leaf_base

            take_l = ok_l & leaf_l
            if np.any(take_l):
                emit(lanes[take_l], l_child[take_l])
            take_r = ok_r & leaf_r
            if np.any(take_r):
                emit(lanes[take_r], r_child[take_r])

            push_l = ok_l & ~leaf_l
            push_r = ok_r & ~leaf_r
            both = push_l & push_r
            first = np.where(push_l, l_child, r_child)
            any_push = push_l | push_r
            sub1 = lanes[any_push]
            stack[sub1, sp[sub1]] = first[any_push].astype(np.int32)
            sp[sub1] += 1
            sub2 = lanes[both]
            stack[sub2, sp[sub2]] = r_child[both].astype(np.int32)
            sp[sub2] += 1
            local.stack_ops += sub1.size + sub2.size
        trace.flush(local)

    if found_q:
        q_all = np.concatenate(found_q)
        p_all = np.concatenate(found_p)
        order = np.argsort(q_all, kind="stable")
        q_all = q_all[order]
        p_all = p_all[order]
    else:
        q_all = np.empty(0, dtype=np.int64)
        p_all = np.empty(0, dtype=np.int64)
    counts = np.bincount(q_all, minlength=B)
    offsets = np.zeros(B + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, p_all, q_all
