"""Batched BVH traversals: one SIMT lane per query, lock-step iterations.

This is the NumPy realization of ArborX's bulk search: every query owns a
traversal stack (a row of a ``(B, height+2)`` array) and all lanes advance
together, popping one node and examining its two children per iteration —
exactly Algorithm 2 of the paper executed data-parallel.  Lanes that finish
go inactive; the per-iteration activity mask feeds
:class:`~repro.kokkos.counters.WarpTrace`, which measures the warp divergence
a real GPU would pay.

The nearest-neighbor kernel supports every constraint the single-tree EMST
algorithm needs:

* **component constraint / subtree skipping** — ``node_labels`` per tree node
  (internal nodes carry a component label when their whole subtree is in one
  component, else ``INVALID_LABEL``); a child whose label equals the query's
  label is skipped (Optimization 1, Section 3);
* **initial cutoff radius** — per-query squared radius (Optimization 2);
* **mutual-reachability metric** — per-point core distances fold into leaf
  evaluations and subtree lower bounds (Section 3, "Non-Euclidean metrics");
* **index tie-breaking** — equal-weight candidates compare by the
  ``(min(u,v), max(u,v))`` vertex pair (Section 2), so Borůvka merges are
  provably cycle-free even with duplicate distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.bvh.bvh import BVH
from repro.geometry.distance import point_box_sq, points_sq
from repro.kokkos.counters import CostCounters, WarpTrace

#: Label value meaning "subtree spans multiple components" (never skipped).
INVALID_LABEL = -1

_KEY_SHIFT = np.uint64(32)
_NO_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)


def pair_keys(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Total-order tie-break key for the undirected edge ``(a, b)``.

    Encodes ``(min, max)`` into one uint64 so lexicographic edge comparison
    becomes a single integer comparison.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return (lo << _KEY_SHIFT) | hi


@dataclass
class NearestResult:
    """Result of :func:`batched_nearest` (positions are sorted positions)."""

    position: np.ndarray
    distance_sq: np.ndarray
    key: np.ndarray

    @property
    def found(self) -> np.ndarray:
        """Mask of queries that found any admissible neighbor."""
        return self.position >= 0


def _alloc_stack(bvh: BVH, batch: int) -> Tuple[np.ndarray, np.ndarray]:
    depth = max(bvh.height + 2, 4)
    stack = np.zeros((batch, depth), dtype=np.int32)
    sp = np.zeros(batch, dtype=np.int32)
    return stack, sp


def batched_nearest(
    bvh: BVH,
    query_points: np.ndarray,
    *,
    query_labels: Optional[np.ndarray] = None,
    node_labels: Optional[np.ndarray] = None,
    init_radius_sq: Optional[np.ndarray] = None,
    query_ids: Optional[np.ndarray] = None,
    point_ids: Optional[np.ndarray] = None,
    query_core_sq: Optional[np.ndarray] = None,
    point_core_sq: Optional[np.ndarray] = None,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
) -> NearestResult:
    """Constrained nearest neighbor for a batch of queries (Algorithm 2).

    Parameters
    ----------
    query_points:
        ``(B, d)`` query coordinates.
    query_labels / node_labels:
        Component constraint.  When given, a neighbor is admissible only if
        its label differs from the query's, and any subtree whose
        ``node_labels`` entry equals the query label is skipped.
    init_radius_sq:
        Per-query initial squared cutoff radius (``inf`` when omitted).
    query_ids / point_ids:
        Global vertex ids used for tie-break keys.  When omitted, ties keep
        the first-found neighbor (plain NN semantics).
    query_core_sq / point_core_sq:
        Squared core distances enabling the mutual-reachability metric.
    exclude_position:
        Per-query sorted position to never report (self-exclusion for
        queries drawn from the indexed set, without the label machinery).
    counters:
        Work accounting (node visits, distance evals, warp steps).

    Returns positions in *sorted* order; ``position == -1`` where no
    admissible neighbor exists within the initial radius.
    """
    query_points = np.asarray(query_points, dtype=np.float64)
    if query_points.ndim != 2 or query_points.shape[1] != bvh.dim:
        raise InvalidInputError(
            f"query shape {query_points.shape} incompatible with d={bvh.dim}")
    B = query_points.shape[0]
    n = bvh.n
    leaf_base = bvh.leaf_base

    best_sq = np.full(B, np.inf)
    best_pos = np.full(B, -1, dtype=np.int64)
    best_key = np.full(B, _NO_KEY, dtype=np.uint64)
    radius = (np.full(B, np.inf) if init_radius_sq is None
              else np.asarray(init_radius_sq, dtype=np.float64).copy())
    if radius.shape != (B,):
        raise InvalidInputError("init_radius_sq must have one entry per query")

    use_labels = query_labels is not None
    if use_labels and node_labels is None:
        raise InvalidInputError("query_labels requires node_labels")
    use_mrd = query_core_sq is not None
    if use_mrd and point_core_sq is None:
        raise InvalidInputError("query_core_sq requires point_core_sq")
    use_keys = query_ids is not None
    if use_keys and point_ids is None:
        raise InvalidInputError("query_ids requires point_ids")

    trace = WarpTrace()
    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)

    def eval_leaves(sub: np.ndarray, ppos: np.ndarray) -> None:
        """Exact-distance evaluation of leaf candidates for lanes ``sub``."""
        d = points_sq(query_points[sub], bvh.points[ppos])
        if use_mrd:
            d = np.maximum(d, query_core_sq[sub])
            d = np.maximum(d, point_core_sq[ppos])
        if use_keys:
            key = pair_keys(query_ids[sub], point_ids[ppos])
            better = (d < best_sq[sub]) | ((d == best_sq[sub]) & (key < best_key[sub]))
        else:
            key = None
            better = d < best_sq[sub]
        upd = sub[better]
        best_sq[upd] = d[better]
        best_pos[upd] = ppos[better]
        if use_keys:
            best_key[upd] = key[better]
        radius[upd] = np.minimum(radius[upd], d[better])
        local.distance_evals += sub.size
        local.leaf_visits += sub.size

    if n == 1:
        # Single-leaf tree: evaluate the lone point directly.
        ok = np.ones(B, dtype=bool)
        if use_labels:
            ok &= node_labels[0] != query_labels
        if exclude_position is not None:
            ok &= exclude_position != 0
        sub = np.nonzero(ok)[0]
        if sub.size:
            eval_leaves(sub, np.zeros(sub.size, dtype=np.int64))
        return NearestResult(best_pos, best_sq, best_key)

    stack, sp = _alloc_stack(bvh, B)
    stack[:, 0] = 0  # root
    sp[:] = 1
    if use_labels:
        # Lanes whose component spans the whole tree have nothing to find.
        sp[node_labels[0] == query_labels] = 0

    left, right = bvh.left, bvh.right
    lo, hi = bvh.lo, bvh.hi

    while True:
        active_mask = sp > 0
        lanes = np.nonzero(active_mask)[0]
        if lanes.size == 0:
            break
        trace.step(active_mask)

        sp[lanes] -= 1
        node = stack[lanes, sp[lanes]].astype(np.int64)
        qp = query_points[lanes]
        rad = radius[lanes]

        # Re-test the popped node: the radius may have shrunk since the
        # push (Algorithm 2, line 9).
        d_node = point_box_sq(qp, lo[node], hi[node])
        local.nodes_visited += lanes.size
        local.box_distance_evals += lanes.size
        local.stack_ops += lanes.size
        keep = d_node <= rad
        if not np.any(keep):
            continue
        lanes = lanes[keep]
        node = node[keep]
        qp = qp[keep]
        rad = rad[keep]

        l_child = left[node]
        r_child = right[node]
        dl = point_box_sq(qp, lo[l_child], hi[l_child])
        dr = point_box_sq(qp, lo[r_child], hi[r_child])
        local.box_distance_evals += 2 * lanes.size
        if use_mrd:
            # mrd(u, v) >= core(u): tighten the subtree lower bound.
            qc = query_core_sq[lanes]
            dl_bound = np.maximum(dl, qc)
            dr_bound = np.maximum(dr, qc)
        else:
            dl_bound = dl
            dr_bound = dr

        ok_l = dl_bound <= rad
        ok_r = dr_bound <= rad
        if use_labels:
            qlab = query_labels[lanes]
            ok_l &= node_labels[l_child] != qlab
            ok_r &= node_labels[r_child] != qlab

        leaf_l = l_child >= leaf_base
        leaf_r = r_child >= leaf_base
        if exclude_position is not None:
            excl = exclude_position[lanes]
            ok_l &= ~(leaf_l & (l_child - leaf_base == excl))
            ok_r &= ~(leaf_r & (r_child - leaf_base == excl))

        take_l = ok_l & leaf_l
        if np.any(take_l):
            eval_leaves(lanes[take_l], (l_child - leaf_base)[take_l])
        take_r = ok_r & leaf_r
        if np.any(take_r):
            eval_leaves(lanes[take_r], (r_child - leaf_base)[take_r])

        push_l = ok_l & ~leaf_l
        push_r = ok_r & ~leaf_r
        both = push_l & push_r
        near_is_l = dl <= dr
        far = np.where(near_is_l, r_child, l_child)
        near = np.where(near_is_l, l_child, r_child)
        first = np.where(both, far, np.where(push_l, l_child, r_child))

        any_push = push_l | push_r
        sub1 = lanes[any_push]
        stack[sub1, sp[sub1]] = first[any_push].astype(np.int32)
        sp[sub1] += 1
        sub2 = lanes[both]
        stack[sub2, sp[sub2]] = near[both].astype(np.int32)
        sp[sub2] += 1
        local.stack_ops += sub1.size + sub2.size

    trace.flush(local)
    return NearestResult(best_pos, best_sq, best_key)


@dataclass
class KnnResult:
    """Result of :func:`batched_knn` (positions are sorted positions).

    ``distance_sq[i, j]`` is the squared distance to the (j+1)-th nearest
    admissible point of query ``i``; unfilled slots are ``inf`` with
    position -1.
    """

    positions: np.ndarray
    distance_sq: np.ndarray

    @property
    def kth_distance_sq(self) -> np.ndarray:
        """Squared distance to the k-th neighbor (the core-distance column)."""
        return self.distance_sq[:, -1]


def batched_knn(
    bvh: BVH,
    query_points: np.ndarray,
    k: int,
    *,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
) -> KnnResult:
    """k nearest neighbors for each query (used for HDBSCAN* core distances).

    Note the paper's core distance counts the point itself; callers querying
    the indexed set should therefore *not* exclude self and the ``k``-th
    column includes the zero self-distance.
    """
    query_points = np.asarray(query_points, dtype=np.float64)
    if query_points.ndim != 2 or query_points.shape[1] != bvh.dim:
        raise InvalidInputError(
            f"query shape {query_points.shape} incompatible with d={bvh.dim}")
    if k < 1:
        raise InvalidInputError(f"k must be >= 1, got {k}")
    B = query_points.shape[0]
    n = bvh.n
    leaf_base = bvh.leaf_base

    kbest = np.full((B, k), np.inf)
    kpos = np.full((B, k), -1, dtype=np.int64)

    trace = WarpTrace()
    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)

    def eval_leaves(sub: np.ndarray, ppos: np.ndarray) -> None:
        d = points_sq(query_points[sub], bvh.points[ppos])
        local.distance_evals += sub.size
        local.leaf_visits += sub.size
        improving = d < kbest[sub, -1]
        if not np.any(improving):
            return
        rows = sub[improving]
        merged_d = np.concatenate([kbest[rows], d[improving, None]], axis=1)
        merged_p = np.concatenate([kpos[rows], ppos[improving, None]], axis=1)
        order = np.argsort(merged_d, axis=1, kind="stable")[:, :k]
        take = np.arange(rows.size)[:, None]
        kbest[rows] = merged_d[take, order]
        kpos[rows] = merged_p[take, order]

    if n == 1:
        ok = np.ones(B, dtype=bool)
        if exclude_position is not None:
            ok &= exclude_position != 0
        sub = np.nonzero(ok)[0]
        if sub.size:
            eval_leaves(sub, np.zeros(sub.size, dtype=np.int64))
        return KnnResult(kpos, kbest)

    stack, sp = _alloc_stack(bvh, B)
    stack[:, 0] = 0
    sp[:] = 1
    left, right = bvh.left, bvh.right
    lo, hi = bvh.lo, bvh.hi

    while True:
        active_mask = sp > 0
        lanes = np.nonzero(active_mask)[0]
        if lanes.size == 0:
            break
        trace.step(active_mask)

        sp[lanes] -= 1
        node = stack[lanes, sp[lanes]].astype(np.int64)
        qp = query_points[lanes]
        rad = kbest[lanes, -1]
        d_node = point_box_sq(qp, lo[node], hi[node])
        local.nodes_visited += lanes.size
        local.box_distance_evals += lanes.size
        local.stack_ops += lanes.size
        keep = d_node <= rad
        if not np.any(keep):
            continue
        lanes = lanes[keep]
        node = node[keep]
        qp = qp[keep]
        rad = rad[keep]

        l_child = left[node]
        r_child = right[node]
        dl = point_box_sq(qp, lo[l_child], hi[l_child])
        dr = point_box_sq(qp, lo[r_child], hi[r_child])
        local.box_distance_evals += 2 * lanes.size

        ok_l = dl <= rad
        ok_r = dr <= rad
        leaf_l = l_child >= leaf_base
        leaf_r = r_child >= leaf_base
        if exclude_position is not None:
            excl = exclude_position[lanes]
            ok_l &= ~(leaf_l & (l_child - leaf_base == excl))
            ok_r &= ~(leaf_r & (r_child - leaf_base == excl))

        take_l = ok_l & leaf_l
        if np.any(take_l):
            eval_leaves(lanes[take_l], (l_child - leaf_base)[take_l])
        take_r = ok_r & leaf_r
        if np.any(take_r):
            eval_leaves(lanes[take_r], (r_child - leaf_base)[take_r])

        push_l = ok_l & ~leaf_l
        push_r = ok_r & ~leaf_r
        both = push_l & push_r
        near_is_l = dl <= dr
        far = np.where(near_is_l, r_child, l_child)
        near = np.where(near_is_l, l_child, r_child)
        first = np.where(both, far, np.where(push_l, l_child, r_child))

        any_push = push_l | push_r
        sub1 = lanes[any_push]
        stack[sub1, sp[sub1]] = first[any_push].astype(np.int32)
        sp[sub1] += 1
        sub2 = lanes[both]
        stack[sub2, sp[sub2]] = near[both].astype(np.int32)
        sp[sub2] += 1
        local.stack_ops += sub1.size + sub2.size

    trace.flush(local)
    return KnnResult(kpos, kbest)


def radius_search(
    bvh: BVH,
    query_points: np.ndarray,
    radius: float,
    *,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All indexed points within ``radius`` of each query (spatial query).

    Returns CSR-style ``(offsets, positions, query_of_pair)``: neighbors of
    query ``i`` are ``positions[offsets[i]:offsets[i+1]]`` (sorted
    positions, unordered within a query).
    """
    query_points = np.asarray(query_points, dtype=np.float64)
    if query_points.ndim != 2 or query_points.shape[1] != bvh.dim:
        raise InvalidInputError(
            f"query shape {query_points.shape} incompatible with d={bvh.dim}")
    if radius < 0:
        raise InvalidInputError(f"radius must be >= 0, got {radius}")
    B = query_points.shape[0]
    r_sq = float(radius) * float(radius)
    n = bvh.n
    leaf_base = bvh.leaf_base

    local = counters if counters is not None else CostCounters()
    local.kernel_launches += 1
    local.max_batch = max(local.max_batch, B)
    trace = WarpTrace()

    found_q: List[np.ndarray] = []
    found_p: List[np.ndarray] = []

    def emit(sub: np.ndarray, ppos: np.ndarray) -> None:
        d = points_sq(query_points[sub], bvh.points[ppos])
        local.distance_evals += sub.size
        local.leaf_visits += sub.size
        hit = d <= r_sq
        if np.any(hit):
            found_q.append(sub[hit])
            found_p.append(ppos[hit])

    if n == 1:
        emit(np.arange(B, dtype=np.int64), np.zeros(B, dtype=np.int64))
    else:
        stack, sp = _alloc_stack(bvh, B)
        stack[:, 0] = 0
        sp[:] = 1
        left, right = bvh.left, bvh.right
        lo, hi = bvh.lo, bvh.hi
        while True:
            active_mask = sp > 0
            lanes = np.nonzero(active_mask)[0]
            if lanes.size == 0:
                break
            trace.step(active_mask)
            sp[lanes] -= 1
            node = stack[lanes, sp[lanes]].astype(np.int64)
            local.nodes_visited += lanes.size
            local.stack_ops += lanes.size
            qp = query_points[lanes]

            l_child = left[node]
            r_child = right[node]
            dl = point_box_sq(qp, lo[l_child], hi[l_child])
            dr = point_box_sq(qp, lo[r_child], hi[r_child])
            local.box_distance_evals += 2 * lanes.size
            ok_l = dl <= r_sq
            ok_r = dr <= r_sq
            leaf_l = l_child >= leaf_base
            leaf_r = r_child >= leaf_base

            take_l = ok_l & leaf_l
            if np.any(take_l):
                emit(lanes[take_l], (l_child - leaf_base)[take_l])
            take_r = ok_r & leaf_r
            if np.any(take_r):
                emit(lanes[take_r], (r_child - leaf_base)[take_r])

            push_l = ok_l & ~leaf_l
            push_r = ok_r & ~leaf_r
            both = push_l & push_r
            first = np.where(push_l, l_child, r_child)
            any_push = push_l | push_r
            sub1 = lanes[any_push]
            stack[sub1, sp[sub1]] = first[any_push].astype(np.int32)
            sp[sub1] += 1
            sub2 = lanes[both]
            stack[sub2, sp[sub2]] = r_child[both].astype(np.int32)
            sp[sub2] += 1
            local.stack_ops += sub1.size + sub2.size
        trace.flush(local)

    if found_q:
        q_all = np.concatenate(found_q)
        p_all = np.concatenate(found_p)
        order = np.argsort(q_all, kind="stable")
        q_all = q_all[order]
        p_all = p_all[order]
    else:
        q_all = np.empty(0, dtype=np.int64)
        p_all = np.empty(0, dtype=np.int64)
    counts = np.bincount(q_all, minlength=B)
    offsets = np.zeros(B + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, p_all, q_all


def radius_count(bvh: BVH, query_points: np.ndarray, radius: float,
                 *, counters: Optional[CostCounters] = None) -> np.ndarray:
    """Number of indexed points within ``radius`` of each query."""
    offsets, _, _ = radius_search(bvh, query_points, radius, counters=counters)
    return np.diff(offsets)
