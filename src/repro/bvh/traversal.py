"""Batched BVH traversals: the public kernel API and engine dispatch.

This is the NumPy realization of ArborX's bulk search: every query owns a
traversal stack and all lanes advance together — exactly Algorithm 2 of the
paper executed data-parallel.  Two engines implement the kernels:

* ``"wavefront"`` (:mod:`repro.bvh.wavefront`, the default) — multi-pop
  frontier drains over blocked leaves, with reusable kernel workspaces;
* ``"reference"`` (:mod:`repro.bvh.reference`) — the original single-pop
  lock-step loop, kept as the semantic baseline for property tests and the
  ablation benchmark.

Both produce identical results for every query the EMST pipeline issues
(tie-breaks minimize a total order, so candidate visit order is
immaterial); they differ only in how many stack entries each Python
iteration drains.  Select per call with ``engine=`` or process-wide with
:func:`set_default_engine` / the :func:`traversal_engine` context manager.

The nearest-neighbor kernel supports every constraint the single-tree EMST
algorithm needs:

* **component constraint / subtree skipping** — ``node_labels`` per tree
  node (a node carries a component label when its whole subtree is in one
  component, else ``INVALID_LABEL``); a child whose label equals the
  query's label is skipped (Optimization 1, Section 3).  Blocked trees
  additionally take ``point_labels`` (per sorted position) for the exact
  per-point constraint inside mixed leaf blocks;
* **initial cutoff radius** — per-query squared radius (Optimization 2);
* **mutual-reachability metric** — per-point core distances fold into leaf
  evaluations and subtree lower bounds (Section 3, "Non-Euclidean metrics");
* **index tie-breaking** — equal-weight candidates compare by the
  ``(min(u,v), max(u,v))`` vertex pair (Section 2), so Borůvka merges are
  provably cycle-free even with duplicate distances.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh import reference as _reference
from repro.bvh import wavefront as _wavefront
from repro.bvh.query import (  # noqa: F401 — public re-exports
    INVALID_LABEL,
    KnnResult,
    NearestResult,
    pair_keys,
)
from repro.bvh.workspace import TraversalWorkspace
from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters

#: The engines a traversal call can dispatch to.
ENGINES = ("wavefront", "reference")

_default_engine = "wavefront"


def set_default_engine(engine: str) -> str:
    """Set the process-wide traversal engine; returns the previous one."""
    global _default_engine
    if engine not in ENGINES:
        raise InvalidInputError(
            f"unknown traversal engine {engine!r}; use one of {ENGINES}")
    previous = _default_engine
    _default_engine = engine
    return previous


def get_default_engine() -> str:
    """The engine used when a call passes ``engine=None``."""
    return _default_engine


@contextmanager
def traversal_engine(engine: str):
    """Context manager pinning the default engine (tests, benchmarks)."""
    previous = set_default_engine(engine)
    try:
        yield
    finally:
        set_default_engine(previous)


def _resolve(engine: Optional[str]) -> str:
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise InvalidInputError(
            f"unknown traversal engine {engine!r}; use one of {ENGINES}")
    return engine


def batched_nearest(
    bvh: BVH,
    query_points: np.ndarray,
    *,
    query_labels: Optional[np.ndarray] = None,
    node_labels: Optional[np.ndarray] = None,
    point_labels: Optional[np.ndarray] = None,
    init_radius_sq: Optional[np.ndarray] = None,
    query_ids: Optional[np.ndarray] = None,
    point_ids: Optional[np.ndarray] = None,
    query_core_sq: Optional[np.ndarray] = None,
    point_core_sq: Optional[np.ndarray] = None,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    engine: Optional[str] = None,
    width: Optional[int] = None,
    workspace: Optional[TraversalWorkspace] = None,
    self_queries: bool = False,
) -> NearestResult:
    """Constrained nearest neighbor for a batch of queries (Algorithm 2).

    Parameters
    ----------
    query_points:
        ``(B, d)`` query coordinates.
    query_labels / node_labels / point_labels:
        Component constraint.  When given, a neighbor is admissible only if
        its label differs from the query's, and any subtree whose
        ``node_labels`` entry equals the query label is skipped.
        ``point_labels`` carries per-sorted-position labels; it may be
        omitted for one-point-per-leaf trees (derived from the leaf slice
        of ``node_labels``) but is required for blocked trees.
    init_radius_sq:
        Per-query initial squared cutoff radius (``inf`` when omitted).
    query_ids / point_ids:
        Global vertex ids used for tie-break keys.  When omitted, ties keep
        the first-found neighbor (plain NN semantics).
    query_core_sq / point_core_sq:
        Squared core distances enabling the mutual-reachability metric.
    exclude_position:
        Per-query sorted position to never report (self-exclusion for
        queries drawn from the indexed set, without the label machinery).
    counters:
        Work accounting (node visits, distance evals, warp steps).
    engine / width / workspace:
        Kernel engine selection (``None`` = process default), the
        multi-pop drain width cap (``None`` = the wavefront module's
        ``DEFAULT_WIDTH``, resolved at call time), and a reusable
        :class:`~repro.bvh.workspace.TraversalWorkspace`.

    Returns positions in *sorted* order; ``position == -1`` where no
    admissible neighbor exists within the initial radius.
    """
    kwargs = dict(
        query_labels=query_labels, node_labels=node_labels,
        point_labels=point_labels, init_radius_sq=init_radius_sq,
        query_ids=query_ids, point_ids=point_ids,
        query_core_sq=query_core_sq, point_core_sq=point_core_sq,
        exclude_position=exclude_position, counters=counters,
        workspace=workspace)
    if _resolve(engine) == "wavefront":
        return _wavefront.nearest_wavefront(bvh, query_points, width=width,
                                            self_queries=self_queries,
                                            **kwargs)
    return _reference.nearest_reference(bvh, query_points, **kwargs)


def batched_knn(
    bvh: BVH,
    query_points: np.ndarray,
    k: int,
    *,
    exclude_position: Optional[np.ndarray] = None,
    counters: Optional[CostCounters] = None,
    engine: Optional[str] = None,
    width: Optional[int] = None,
    workspace: Optional[TraversalWorkspace] = None,
    self_queries: bool = False,
) -> KnnResult:
    """k nearest neighbors for each query (used for HDBSCAN* core distances).

    Note the paper's core distance counts the point itself; callers querying
    the indexed set should therefore *not* exclude self and the ``k``-th
    column includes the zero self-distance.
    """
    if _resolve(engine) == "wavefront":
        return _wavefront.knn_wavefront(
            bvh, query_points, k, exclude_position=exclude_position,
            counters=counters, width=width, workspace=workspace,
            self_queries=self_queries)
    return _reference.knn_reference(
        bvh, query_points, k, exclude_position=exclude_position,
        counters=counters, workspace=workspace)


def radius_search(
    bvh: BVH,
    query_points: np.ndarray,
    radius: float,
    *,
    counters: Optional[CostCounters] = None,
    engine: Optional[str] = None,
    width: Optional[int] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All indexed points within ``radius`` of each query (spatial query).

    Returns CSR-style ``(offsets, positions, query_of_pair)``: neighbors of
    query ``i`` are ``positions[offsets[i]:offsets[i+1]]`` (sorted
    positions, unordered within a query).
    """
    if _resolve(engine) == "wavefront":
        return _wavefront.radius_wavefront(
            bvh, query_points, radius, counters=counters, width=width,
            workspace=workspace)
    return _reference.radius_reference(
        bvh, query_points, radius, counters=counters, workspace=workspace)


def radius_count(bvh: BVH, query_points: np.ndarray, radius: float,
                 *, counters: Optional[CostCounters] = None,
                 engine: Optional[str] = None,
                 width: Optional[int] = None,
                 workspace: Optional[TraversalWorkspace] = None) -> np.ndarray:
    """Number of indexed points within ``radius`` of each query."""
    offsets, _, _ = radius_search(bvh, query_points, radius,
                                  counters=counters, engine=engine,
                                  width=width, workspace=workspace)
    return np.diff(offsets)
