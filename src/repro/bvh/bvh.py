"""The :class:`BVH` container and its construction pipeline.

``build_bvh`` performs the three LBVH construction stages (Z-curve sort,
Karras hierarchy, bottom-up refit) and records their work into a counter
set, so the "tree" phase of every benchmark reflects measured construction
cost — this is the paper's ``T_tree`` (Figure 8b).

Leaves may be *blocked*: with ``leaf_size = L > 1`` each leaf covers up to
``L`` consecutive Z-curve positions, shrinking the hierarchy to
``ceil(n / L)`` leaves.  Traversals then evaluate a whole block of exact
distances per leaf visit, which amortizes per-step traversal overhead —
the standard wide-traversal remedy for SIMT hardware, and the blocked-leaf
counterpart of ArborX's bulk search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.geometry.morton import morton_encode, morton_encode_high
from repro.bvh.build import karras_hierarchy
from repro.bvh.refit import bottom_up_schedule, refit_bounds
from repro.kokkos.counters import CostCounters

#: Monotone source of :attr:`BVH.uid` identity tokens.
_BVH_UIDS = itertools.count(1)


@dataclass
class BVH:
    """A linear bounding volume hierarchy over a point set.

    Points are stored in Z-curve order internally (``points``); ``order``
    maps sorted position to the caller's original index
    (``points[i] == original_points[order[i]]``).  All traversal results are
    expressed in *sorted positions*; callers translate with ``order``.

    Leaves are *blocks* of consecutive sorted positions: leaf ``j`` covers
    ``leaf_start[j] .. leaf_start[j] + leaf_count[j] - 1``.  The classic
    one-point-per-leaf tree is the ``leaf_size == 1`` special case
    (``leaf_start == arange(n)``, all counts 1).

    Node ids: with ``m`` leaves, internal nodes are ``0..m-2`` (root 0) and
    leaf ``j`` is node ``m - 1 + j``.  ``left``/``right`` are children of
    internal nodes; ``parent`` covers all ``2m - 1`` nodes.
    """

    points: np.ndarray
    order: np.ndarray
    codes: np.ndarray
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    schedule: List[np.ndarray] = field(default_factory=list)
    #: Low words of double-resolution Morton codes (None for 64-bit builds).
    codes_lo: Optional[np.ndarray] = None
    #: First sorted position covered by each leaf (``(m,)`` int64).
    #: ``None`` means one point per leaf (filled in ``__post_init__``).
    leaf_start: Optional[np.ndarray] = None
    #: Number of points covered by each leaf (``(m,)`` int64).
    leaf_count: Optional[np.ndarray] = None
    #: The build-time blocking factor (max points per leaf).
    leaf_size: int = 1

    def __post_init__(self) -> None:
        if self.leaf_start is None or self.leaf_count is None:
            n = self.points.shape[0]
            self.leaf_start = np.arange(n, dtype=np.int64)
            self.leaf_count = np.ones(n, dtype=np.int64)
            self.leaf_size = 1
        # Identity token for workspace-cached per-tree artifacts (query
        # plans).  Deliberately not part of the serialized state: a
        # deserialized tree gets a fresh token.
        self.uid = next(_BVH_UIDS)

    @property
    def n(self) -> int:
        """Number of points."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Spatial dimension."""
        return self.points.shape[1]

    @property
    def n_leaves(self) -> int:
        """Number of leaves (``ceil(n / leaf_size)`` blocks)."""
        return self.leaf_start.shape[0]

    @property
    def leaf_base(self) -> int:
        """Node id of leaf block 0."""
        return self.n_leaves - 1

    @property
    def n_nodes(self) -> int:
        """Total node count, ``2 * n_leaves - 1``."""
        return 2 * self.n_leaves - 1

    @property
    def height(self) -> int:
        """Number of internal levels (max stack depth a traversal needs)."""
        return len(self.schedule)

    def is_leaf(self, node: np.ndarray) -> np.ndarray:
        """Boolean mask: which node ids are leaves."""
        return np.asarray(node) >= self.leaf_base

    def leaf_position(self, node: np.ndarray) -> np.ndarray:
        """Leaf block index of leaf node ids."""
        return np.asarray(node) - self.leaf_base


def leaf_blocks(n: int, leaf_size: int) -> np.ndarray:
    """First sorted position of each leaf block (the last may be short)."""
    if leaf_size < 1:
        raise InvalidInputError(f"leaf_size must be >= 1, got {leaf_size}")
    return np.arange(0, n, leaf_size, dtype=np.int64)


def build_bvh(points: np.ndarray, *, bits: Optional[int] = None,
              high_resolution: bool = False,
              leaf_size: int = 1,
              counters: Optional[CostCounters] = None) -> BVH:
    """Construct the LBVH for ``points`` (``(n, d)`` with ``d`` in (2, 3)).

    ``bits`` controls Z-curve resolution (see
    :func:`repro.geometry.morton.morton_encode`); lowering it reproduces the
    GeoLife pathology discussed in Section 4.1.  ``high_resolution=True``
    uses double-width (128-bit) Morton codes instead — the fix the paper
    proposes for that pathology (doubling sort cost, unchanged queries).
    ``leaf_size`` blocks up to that many consecutive Z-curve positions into
    one leaf (1 reproduces the classic one-point-per-leaf tree).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    if high_resolution and bits is not None:
        raise InvalidInputError("bits and high_resolution are exclusive")
    if leaf_size < 1:
        raise InvalidInputError(f"leaf_size must be >= 1, got {leaf_size}")
    n, dim = points.shape

    if high_resolution:
        hi_codes, lo_codes = morton_encode_high(points)
        order = np.lexsort((np.arange(n), lo_codes, hi_codes))
        codes = hi_codes[order]
        codes_lo = lo_codes[order]
    else:
        codes_unsorted = morton_encode(points, bits)
        order = np.argsort(codes_unsorted, kind="stable")
        codes = codes_unsorted[order]
        codes_lo = None
    sorted_points = points[order]
    if counters is not None:
        counters.record_bulk(n, ops_per_item=10.0 * dim, bytes_per_item=8.0 * dim)
        counters.record_sort(n, bytes_per_item=24.0 if high_resolution
                             else 16.0)

    leaf_start = leaf_blocks(n, leaf_size)
    leaf_count = np.diff(np.append(leaf_start, n))
    m = leaf_start.shape[0]

    if m == 1:
        # Degenerate single-leaf tree: node 0 is the leaf and the root.
        lo = sorted_points.min(axis=0, keepdims=True)
        hi = sorted_points.max(axis=0, keepdims=True)
        return BVH(
            points=sorted_points,
            order=order,
            codes=codes,
            left=np.empty(0, dtype=np.int64),
            right=np.empty(0, dtype=np.int64),
            parent=np.array([-1], dtype=np.int64),
            lo=lo,
            hi=hi,
            schedule=[],
            codes_lo=codes_lo,
            leaf_start=leaf_start,
            leaf_count=leaf_count,
            leaf_size=leaf_size,
        )

    # The hierarchy is built over one representative code per block (the
    # block's first position); the per-position index tie-break therefore
    # becomes a per-block tie-break, and duplicates stay well-formed.
    block_codes = codes[leaf_start]
    block_codes_lo = codes_lo[leaf_start] if codes_lo is not None else None
    left, right, parent = karras_hierarchy(block_codes, counters,
                                           codes_lo=block_codes_lo)
    schedule = bottom_up_schedule(left, right, m)
    lo, hi = refit_bounds(sorted_points, left, right, schedule, counters,
                          leaf_start=leaf_start)
    return BVH(points=sorted_points, order=order, codes=codes,
               left=left, right=right, parent=parent,
               lo=lo, hi=hi, schedule=schedule, codes_lo=codes_lo,
               leaf_start=leaf_start, leaf_count=leaf_count,
               leaf_size=leaf_size)
