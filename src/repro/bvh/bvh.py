"""The :class:`BVH` container and its construction pipeline.

``build_bvh`` performs the three LBVH construction stages (Z-curve sort,
Karras hierarchy, bottom-up refit) and records their work into a counter
set, so the "tree" phase of every benchmark reflects measured construction
cost — this is the paper's ``T_tree`` (Figure 8b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.geometry.morton import morton_encode, morton_encode_high
from repro.bvh.build import karras_hierarchy
from repro.bvh.refit import bottom_up_schedule, refit_bounds
from repro.kokkos.counters import CostCounters


@dataclass
class BVH:
    """A linear bounding volume hierarchy over a point set.

    Points are stored in Z-curve order internally (``points``); ``order``
    maps sorted position to the caller's original index
    (``points[i] == original_points[order[i]]``).  All traversal results are
    expressed in *sorted positions*; callers translate with ``order``.

    Node ids: internal nodes ``0..n-2`` (root 0), the leaf for sorted
    position ``i`` is node ``n - 1 + i``.  ``left``/``right`` are children
    of internal nodes; ``parent`` covers all ``2n - 1`` nodes.
    """

    points: np.ndarray
    order: np.ndarray
    codes: np.ndarray
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    schedule: List[np.ndarray] = field(default_factory=list)
    #: Low words of double-resolution Morton codes (None for 64-bit builds).
    codes_lo: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        """Number of points / leaves."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Spatial dimension."""
        return self.points.shape[1]

    @property
    def leaf_base(self) -> int:
        """Node id of the leaf at sorted position 0."""
        return self.n - 1

    @property
    def n_nodes(self) -> int:
        """Total node count, ``2n - 1``."""
        return 2 * self.n - 1

    @property
    def height(self) -> int:
        """Number of internal levels (max stack depth a traversal needs)."""
        return len(self.schedule)

    def is_leaf(self, node: np.ndarray) -> np.ndarray:
        """Boolean mask: which node ids are leaves."""
        return np.asarray(node) >= self.leaf_base

    def leaf_position(self, node: np.ndarray) -> np.ndarray:
        """Sorted point position of leaf node ids."""
        return np.asarray(node) - self.leaf_base


def build_bvh(points: np.ndarray, *, bits: Optional[int] = None,
              high_resolution: bool = False,
              counters: Optional[CostCounters] = None) -> BVH:
    """Construct the LBVH for ``points`` (``(n, d)`` with ``d`` in (2, 3)).

    ``bits`` controls Z-curve resolution (see
    :func:`repro.geometry.morton.morton_encode`); lowering it reproduces the
    GeoLife pathology discussed in Section 4.1.  ``high_resolution=True``
    uses double-width (128-bit) Morton codes instead — the fix the paper
    proposes for that pathology (doubling sort cost, unchanged queries).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    if high_resolution and bits is not None:
        raise InvalidInputError("bits and high_resolution are exclusive")
    n, dim = points.shape

    if high_resolution:
        hi_codes, lo_codes = morton_encode_high(points)
        order = np.lexsort((np.arange(n), lo_codes, hi_codes))
        codes = hi_codes[order]
        codes_lo = lo_codes[order]
    else:
        codes_unsorted = morton_encode(points, bits)
        order = np.argsort(codes_unsorted, kind="stable")
        codes = codes_unsorted[order]
        codes_lo = None
    sorted_points = points[order]
    if counters is not None:
        counters.record_bulk(n, ops_per_item=10.0 * dim, bytes_per_item=8.0 * dim)
        counters.record_sort(n, bytes_per_item=24.0 if high_resolution
                             else 16.0)

    if n == 1:
        # Degenerate single-leaf tree: node 0 is the leaf and the root.
        return BVH(
            points=sorted_points,
            order=order,
            codes=codes,
            left=np.empty(0, dtype=np.int64),
            right=np.empty(0, dtype=np.int64),
            parent=np.array([-1], dtype=np.int64),
            lo=sorted_points.copy(),
            hi=sorted_points.copy(),
            schedule=[],
            codes_lo=codes_lo,
        )

    left, right, parent = karras_hierarchy(codes, counters,
                                           codes_lo=codes_lo)
    schedule = bottom_up_schedule(left, right, n)
    lo, hi = refit_bounds(sorted_points, left, right, schedule, counters)
    return BVH(points=sorted_points, order=order, codes=codes,
               left=left, right=right, parent=parent,
               lo=lo, hi=hi, schedule=schedule, codes_lo=codes_lo)
