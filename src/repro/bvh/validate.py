"""Structural invariants of a built BVH (used by tests and debug assertions).

Checks, for trees with ``m >= 2`` leaves:

* every internal node has exactly two distinct children, every non-root node
  exactly one parent, and the root is node 0 with parent -1;
* the children arrays describe a tree covering all ``2m - 1`` nodes;
* each internal node's box equals the union of its children's boxes
  (so parent boxes contain child boxes);
* every leaf box equals the tight box of its point block (degenerate to the
  point for single-point leaves);
* the leaf blocks partition ``0..n-1`` into contiguous sorted-position
  runs of at most ``leaf_size`` points, and the leaves reachable from any
  internal node form a contiguous range of blocks (the Karras range
  property the EMST label reduction relies on).
"""

from __future__ import annotations

import numpy as np

from repro.bvh.bvh import BVH


def check_bvh_invariants(bvh: BVH) -> None:
    """Raise ``AssertionError`` describing the first violated invariant."""
    n = bvh.n
    m = bvh.n_leaves

    # Leaf blocking: a partition of 0..n-1 into runs of <= leaf_size.
    assert bvh.leaf_start.shape == (m,), "leaf_start shape"
    assert bvh.leaf_count.shape == (m,), "leaf_count shape"
    assert bvh.leaf_start[0] == 0, "first block starts at 0"
    assert np.all(bvh.leaf_count >= 1), "empty leaf block"
    assert np.all(bvh.leaf_count <= bvh.leaf_size), "oversized leaf block"
    ends = bvh.leaf_start + bvh.leaf_count
    assert ends[-1] == n, "blocks must cover all points"
    assert np.array_equal(ends[:-1], bvh.leaf_start[1:]), \
        "blocks must tile sorted positions contiguously"

    leaf_lo = np.minimum.reduceat(bvh.points, bvh.leaf_start, axis=0)
    leaf_hi = np.maximum.reduceat(bvh.points, bvh.leaf_start, axis=0)
    if m == 1:
        assert bvh.n_nodes == 1
        assert np.array_equal(bvh.lo, leaf_lo)
        assert np.array_equal(bvh.hi, leaf_hi)
        return

    n_internal = m - 1
    leaf_base = bvh.leaf_base
    left, right, parent = bvh.left, bvh.right, bvh.parent

    assert left.shape == (n_internal,), "left children array shape"
    assert right.shape == (n_internal,), "right children array shape"
    assert parent.shape == (2 * m - 1,), "parent array shape"
    assert parent[0] == -1, "root parent must be -1"

    children = np.concatenate([left, right])
    assert children.min() >= 1 or (children.min() >= 0 and 0 not in children), \
        "root must not be a child"
    assert 0 not in children, "root must not be a child"
    assert children.max() <= 2 * m - 2, "child id out of range"
    unique, counts = np.unique(children, return_counts=True)
    assert unique.size == 2 * m - 2, "every non-root node appears as a child"
    assert np.all(counts == 1), "each node has exactly one parent"

    # parent[] consistency with the children arrays.
    internal_ids = np.arange(n_internal)
    assert np.array_equal(parent[left], internal_ids), "parent(left) mismatch"
    assert np.array_equal(parent[right], internal_ids), "parent(right) mismatch"

    # Bounding boxes: unions and tight leaf-block boxes.
    assert np.array_equal(bvh.lo[leaf_base:], leaf_lo), "leaf lo"
    assert np.array_equal(bvh.hi[leaf_base:], leaf_hi), "leaf hi"
    want_lo = np.minimum(bvh.lo[left], bvh.lo[right])
    want_hi = np.maximum(bvh.hi[left], bvh.hi[right])
    assert np.array_equal(bvh.lo[:n_internal], want_lo), "internal lo union"
    assert np.array_equal(bvh.hi[:n_internal], want_hi), "internal hi union"

    # Leaf-range contiguity per internal node.
    lo_leaf, hi_leaf = _leaf_ranges(bvh)
    sizes = _subtree_leaf_counts(bvh)
    assert np.all(hi_leaf - lo_leaf + 1 == sizes), \
        "subtree leaves are not a contiguous sorted range"
    assert lo_leaf[0] == 0 and hi_leaf[0] == m - 1, "root spans all leaves"


def _leaf_ranges(bvh: BVH):
    """(min, max) leaf block index under each internal node."""
    m = bvh.n_leaves
    leaf_base = bvh.leaf_base
    lo = np.full(m - 1, np.iinfo(np.int64).max, dtype=np.int64)
    hi = np.full(m - 1, -1, dtype=np.int64)

    def child_range(child):
        is_leaf = child >= leaf_base
        c_lo = np.where(is_leaf, child - leaf_base,
                        lo[np.minimum(child, m - 2)])
        c_hi = np.where(is_leaf, child - leaf_base,
                        hi[np.minimum(child, m - 2)])
        return c_lo, c_hi

    for ids in bvh.schedule:
        l_lo, l_hi = child_range(bvh.left[ids])
        r_lo, r_hi = child_range(bvh.right[ids])
        lo[ids] = np.minimum(l_lo, r_lo)
        hi[ids] = np.maximum(l_hi, r_hi)
    return lo, hi


def _subtree_leaf_counts(bvh: BVH) -> np.ndarray:
    """Number of leaves under each internal node."""
    m = bvh.n_leaves
    leaf_base = bvh.leaf_base
    counts = np.zeros(m - 1, dtype=np.int64)

    def child_count(child):
        is_leaf = child >= leaf_base
        return np.where(is_leaf, 1, counts[np.minimum(child, m - 2)])

    for ids in bvh.schedule:
        counts[ids] = child_count(bvh.left[ids]) + child_count(bvh.right[ids])
    return counts
