"""Linear bounding volume hierarchy (the ArborX substrate).

Construction follows the approach the paper inherits from ArborX
[Lebrun-Grandié et al. 2020]:

1. points are linearized along a Z-order space-filling curve
   (:mod:`repro.geometry.morton`),
2. the binary hierarchy over the sorted codes is produced with Karras'
   fully parallel algorithm [Karras 2012] (vectorized over all internal
   nodes simultaneously; a scalar reference implementation backs the tests),
3. bounding boxes are filled by a bottom-up refit pass.

Given ``n`` points and a blocking factor ``leaf_size`` (default 1) the
tree has ``m = ceil(n / leaf_size)`` leaves — each covering a run of
consecutive Z-curve positions — and ``m - 1`` internal nodes (``2m - 1``
total).  Node ids: internal nodes are ``0 .. m-2`` with the root at 0;
leaf block ``j`` is node ``m - 1 + j``.

Traversals (:mod:`repro.bvh.traversal`) are *batched*: every query is a
SIMT lane with its own traversal stack, executed in vectorized
iterations — the NumPy realization of the paper's one-thread-per-query
GPU kernels, instrumented for the cost model.  Two engines implement
them: the production multi-pop ``wavefront`` engine
(:mod:`repro.bvh.wavefront` — plan-seeded self-queries,
distance-carrying stacks, reusable :class:`TraversalWorkspace` arenas)
and the single-pop ``reference`` baseline (:mod:`repro.bvh.reference`),
byte-identical in every answer.
"""

from repro.bvh.build import karras_hierarchy, karras_hierarchy_scalar
from repro.bvh.bvh import BVH, build_bvh
from repro.bvh.refit import bottom_up_schedule, refit_bounds
from repro.bvh.traversal import (
    batched_knn,
    batched_nearest,
    get_default_engine,
    radius_count,
    radius_search,
    set_default_engine,
    traversal_engine,
)
from repro.bvh.validate import check_bvh_invariants
from repro.bvh.workspace import TraversalWorkspace

__all__ = [
    "BVH",
    "build_bvh",
    "karras_hierarchy",
    "karras_hierarchy_scalar",
    "bottom_up_schedule",
    "refit_bounds",
    "batched_nearest",
    "batched_knn",
    "radius_search",
    "radius_count",
    "check_bvh_invariants",
    "TraversalWorkspace",
    "traversal_engine",
    "set_default_engine",
    "get_default_engine",
]
