"""Linear bounding volume hierarchy (the ArborX substrate).

Construction follows the approach the paper inherits from ArborX
[Lebrun-Grandié et al. 2020]:

1. points are linearized along a Z-order space-filling curve
   (:mod:`repro.geometry.morton`),
2. the binary hierarchy over the sorted codes is produced with Karras'
   fully parallel algorithm [Karras 2012] (vectorized over all internal
   nodes simultaneously; a scalar reference implementation backs the tests),
3. bounding boxes are filled by a bottom-up refit pass.

Given ``n`` points the tree has ``n - 1`` internal nodes and ``n`` leaves
(2n - 1 nodes total).  Node ids: internal nodes are ``0 .. n-2`` with the
root at 0; leaf for sorted position ``i`` is node ``n - 1 + i``.

Traversals (:mod:`repro.bvh.traversal`) are *batched*: every query is a SIMT
lane with its own traversal stack, executed in lock-step vectorized
iterations — the NumPy realization of the paper's one-thread-per-query GPU
kernels, instrumented for the cost model.
"""

from repro.bvh.build import karras_hierarchy, karras_hierarchy_scalar
from repro.bvh.bvh import BVH, build_bvh
from repro.bvh.refit import bottom_up_schedule, refit_bounds
from repro.bvh.traversal import (
    batched_knn,
    batched_nearest,
    radius_count,
    radius_search,
)
from repro.bvh.validate import check_bvh_invariants

__all__ = [
    "BVH",
    "build_bvh",
    "karras_hierarchy",
    "karras_hierarchy_scalar",
    "bottom_up_schedule",
    "refit_bounds",
    "batched_nearest",
    "batched_knn",
    "radius_search",
    "radius_count",
    "check_bvh_invariants",
]
