"""Per-tree query plans: precomputed root paths for self-queries.

Every Borůvka round — and the core-distance k-NN — issues the *same*
query batch: the indexed points themselves, one lane per sorted position.
A top-down traversal re-derives, round after round, the one thing that
never changes: the lane's root-to-leaf path and the geometry of the
subtrees hanging off it.

A :class:`QueryPlan` computes that once per tree.  For sorted position
``i`` it records, per path level, the *sibling* subtree hanging off the
``i``-th leaf's ancestor chain together with its point-box lower bound.
The path siblings plus the lane's own leaf partition the whole tree, so
seeding a traversal stack with exactly the admissible siblings (bound
``<=`` radius, component label differs) is equivalent to a full top-down
traversal — every pruning test the descent would have applied to those
nodes is applied by the seed filter or by the pop re-test, on identical
float values.  What disappears is the per-round rediscovery of the path:
each wavefront launch starts with one vectorized ``(n, depth)`` filter
instead of popping through the top levels of the tree ``n`` lanes wide.

Plans are cached on the :class:`~repro.bvh.workspace.TraversalWorkspace`
keyed by the tree's identity token, so one plan serves all rounds of an
EMST run and the core-distance pass over the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.bvh import BVH
from repro.geometry.distance import point_box_sq


@dataclass
class QueryPlan:
    """Precomputed path siblings for the self-query batch of one tree.

    ``sib_nodes[i, c]`` is the node id of the sibling subtree at path
    level ``c`` of sorted position ``i`` (columns ordered root-side
    first; -1 pads lanes with shorter paths), and the **last** column is
    the lane's own leaf.  ``sib_dist[i, c]`` is the corresponding
    point-box squared lower bound (``inf`` at pads, 0 at the own-leaf
    column).  Seeding pushes columns left to right, so the deepest —
    nearest — subtrees end on top of the stack and are drained first.
    """

    sib_nodes: np.ndarray
    sib_dist: np.ndarray
    #: ``sib_nodes >= 0`` (pads excluded), precomputed for the per-round
    #: admissibility filter.
    valid: np.ndarray
    #: ``maximum(sib_nodes, 0)`` — gather-safe node ids for label lookups.
    safe_nodes: np.ndarray
    #: Box distance evaluations performed to build the plan (charged to
    #: the counters of the kernel launch that built it).
    build_box_evals: int

    @property
    def depth(self) -> int:
        """Number of plan columns (max path length + own leaf)."""
        return self.sib_nodes.shape[1]


def build_query_plan(bvh: BVH) -> QueryPlan:
    """Compute the :class:`QueryPlan` of ``bvh`` (requires ``>=2`` leaves)."""
    n = bvh.n
    leaf_base = bvh.leaf_base
    parent = bvh.parent
    left = bvh.left
    # Leaf node id of every sorted position.
    block_of = np.searchsorted(bvh.leaf_start,
                               np.arange(n, dtype=np.int64), side="right") - 1
    own_leaf = leaf_base + block_of

    # Walk the ancestor chain of every lane in lock-step, collecting the
    # off-path sibling at each level (leaf-side first, reversed below).
    columns = []
    cur = own_leaf
    while True:
        par = parent[cur]
        live = par >= 0
        if not np.any(live):
            break
        par_safe = np.maximum(par, 0)
        sibling = left[par_safe] + bvh.right[par_safe] - cur  # the other child
        columns.append(np.where(live, sibling, -1))
        cur = np.where(live, par_safe, cur)

    columns.reverse()  # root-side siblings first
    depth = len(columns) + 1
    sib_nodes = np.full((n, depth), -1, dtype=np.int64)
    for c, col in enumerate(columns):
        sib_nodes[:, c] = col
    sib_nodes[:, -1] = own_leaf

    sib_dist = np.full((n, depth), np.inf)
    valid = sib_nodes >= 0
    lane_idx, col_idx = np.nonzero(valid)
    nodes = sib_nodes[lane_idx, col_idx]
    sib_dist[lane_idx, col_idx] = point_box_sq(
        bvh.points[lane_idx], bvh.lo[nodes], bvh.hi[nodes])
    return QueryPlan(sib_nodes=sib_nodes, sib_dist=sib_dist,
                     valid=valid, safe_nodes=np.maximum(sib_nodes, 0),
                     build_box_evals=int(lane_idx.size))
