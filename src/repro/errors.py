"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by :mod:`repro`."""


class InvalidInputError(ReproError, ValueError):
    """Raised when user-supplied data fails validation.

    Examples: a point array that is not two-dimensional, contains NaN/Inf,
    has an unsupported dimensionality for a Morton-coded structure, or is
    empty where at least one point is required.
    """


class DimensionError(InvalidInputError):
    """Raised when the spatial dimension of the input is unsupported."""


class NotBuiltError(ReproError, RuntimeError):
    """Raised when querying a spatial index that has not been constructed."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative algorithm fails to make progress.

    Borůvka's algorithm must merge at least two components every round; if a
    round finds no outgoing edge for any component the input is inconsistent
    (this cannot happen for a complete distance graph unless there is a bug
    or the data contains non-finite coordinates).
    """


class ExecutionSpaceError(ReproError, RuntimeError):
    """Raised for misuse of the :mod:`repro.kokkos` execution-space layer."""


class ServiceError(ReproError, RuntimeError):
    """Raised for lifecycle misuse of the :mod:`repro.service` engine.

    Example: submitting a job to an engine (or scheduler) that has been
    closed.  Deliberately distinct from :class:`InvalidInputError` — the
    job spec may be perfectly valid; it is the *service* that cannot take
    it — so the HTTP front end can map it to 503 rather than 400.
    """


class ClusterError(ReproError, RuntimeError):
    """Raised for fleet-level failures in :mod:`repro.cluster`.

    Example: a router whose every candidate node refused or dropped a
    connection.  Like :class:`ServiceError` this is an availability
    condition, not a client error — the router front end maps it to 503.
    """


class NodeUnavailableError(ClusterError):
    """One node could not serve a request (connection error, timeout or a
    5xx response).  The router treats this as a failover trigger: the job
    moves to the next node in ring order rather than failing."""


class NodeOverloadedError(NodeUnavailableError):
    """One node shed the request (429 with a retryable envelope).

    Failover-eligible like :class:`NodeUnavailableError` — another node
    may have headroom — but deliberately distinct: an overloaded node is
    *alive*, so the router must not mark it down or trigger job recovery,
    and a client should honor ``retry_after`` (seconds, from the
    ``Retry-After`` header) before retrying the same node.
    """

    def __init__(self, message: str, *,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after
