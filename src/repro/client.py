"""Public Python SDK for the ``/v1`` wire API.

One :class:`Client` speaks to a single base URL — a ``repro serve`` node
or a ``repro route`` router; the contract is identical by design, so the
caller never needs to know which is answering (the ``X-Repro-Node``
header and fleet-shaped stats documents are the only tells).

Wraps the cluster tier's :class:`~repro.cluster.client.NodeClient`
transport, so error handling is the typed taxonomy rather than raw
``urllib`` exceptions:

* :class:`~repro.cluster.client.NodeHTTPError` — the request is at
  fault (bad spec → 400, unknown job → 404), with the envelope's
  machine-readable ``error_code``;
* :class:`~repro.errors.NodeOverloadedError` — admission control shed
  the request (429); honor ``retry_after`` and retry;
* :class:`~repro.errors.NodeUnavailableError` — the server is
  unreachable or failing (connection error, 5xx).

Example
-------
>>> from repro.client import Client                        # doctest: +SKIP
>>> client = Client("http://127.0.0.1:8321")               # doctest: +SKIP
>>> result = client.submit_and_wait(                       # doctest: +SKIP
...     {"dataset": "Uniform100M2:100000", "algorithm": "emst"})
>>> result["status"]                                       # doctest: +SKIP
'done'
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Union

from repro.cluster.client import DEFAULT_RETRIES, DEFAULT_TIMEOUT, NodeClient
from repro.cluster.topology import Node
from repro.service.jobs import JobSpec

#: Job statuses after which the body carries the (possibly failed) result.
TERMINAL_STATUSES = ("done", "failed")

#: Server-side cap on one long-poll; longer waits re-poll in chunks.
_WAIT_CHUNK = 30.0


class Client:
    """Blocking client for one ``/v1`` endpoint (node or router)."""

    def __init__(self, url: str, *, timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES) -> None:
        self.url = url.rstrip("/")
        self._node = NodeClient(Node(self.url),
                                timeout=timeout, retries=retries)

    # ------------------------------------------------------------------ jobs

    def submit(self, spec: Union[JobSpec, Dict[str, Any]]
               ) -> Dict[str, Any]:
        """POST one job; returns the 202 body (``job_id``, ``status``)."""
        body = spec.to_dict() if isinstance(spec, JobSpec) else spec
        return self._node.submit(body)[0]

    def poll(self, job_id: str, wait_s: float = 0.0) -> Dict[str, Any]:
        """GET one job, long-polling up to ``wait_s`` seconds server-side."""
        return self._node.job(job_id, wait_s=wait_s)[0]

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The terminal job body, or ``None`` while still in flight."""
        body = self.poll(job_id)
        return body if body.get("status") in TERMINAL_STATUSES else None

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Block until ``job_id`` reaches a terminal status.

        Long-polls in bounded server-side chunks (the wire caps one poll
        at 60 s).  Raises the builtin :class:`TimeoutError` if the job is
        still in flight after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            chunk = max(0.0, min(deadline - time.monotonic(), _WAIT_CHUNK))
            body = self.poll(job_id, wait_s=chunk)
            if body.get("status") in TERMINAL_STATUSES:
                return body
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still "
                                   f"{body.get('status')} after {timeout}s")

    def submit_and_wait(self, spec: Union[JobSpec, Dict[str, Any]],
                        timeout: float = 60.0) -> Dict[str, Any]:
        """Submit one job and block for its terminal body."""
        return self.wait(self.submit(spec)["job_id"], timeout=timeout)

    def trace(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job's span tree (``None`` until terminal, or if disabled)."""
        body = self.result(job_id)
        return body.get("trace") if body else None

    # ----------------------------------------------------------- diagnostics

    def traces(self, *, since: Optional[float] = None,
               min_duration_ms: Optional[float] = None,
               outcome: Optional[str] = None,
               algorithm: Optional[str] = None,
               limit: Optional[int] = None) -> Dict[str, Any]:
        """``GET /v1/traces`` — archived (tail-sampled) trace records.

        Against a router this answers fleet-wide, node-tagged and merged
        slowest-first.  Filters: ``since`` (unix seconds),
        ``min_duration_ms``, ``outcome`` (``done``/``failed``),
        ``algorithm``, ``limit``.
        """
        params: Dict[str, Any] = {}
        if since is not None:
            params["since"] = since
        if min_duration_ms is not None:
            params["min_duration_ms"] = min_duration_ms
        if outcome is not None:
            params["outcome"] = outcome
        if algorithm is not None:
            params["algorithm"] = algorithm
        if limit is not None:
            params["limit"] = limit
        return self._node.traces(params or None)

    def archived_trace(self, trace_id: str) -> Dict[str, Any]:
        """``GET /v1/traces/<id>`` — one archived trace record.

        (Distinct from :meth:`trace`, which reads the live span tree off
        a finished job body.)  An unknown id raises
        :class:`~repro.cluster.client.NodeHTTPError` with
        ``error_code="unknown_trace"``.
        """
        return self._node.trace(trace_id)[0]

    def profile(self, seconds: Optional[float] = None,
                hz: Optional[float] = None) -> Dict[str, Any]:
        """``GET /v1/profile`` — a sampling-profiler document.

        With ``seconds`` set the server burst-samples for that window
        (the call blocks for its duration); without it the server
        answers instantly from its ring of recent always-on samples.
        Against a router this captures every node concurrently and
        returns the node-tagged fleet merge.  ``enabled: false`` marks
        a server running with observability off.
        """
        return self._node.profile(seconds=seconds, hz=hz)

    def profile_collapsed(self, seconds: Optional[float] = None,
                          hz: Optional[float] = None) -> str:
        """``GET /v1/profile`` as collapsed-stack text — pipe it to
        ``flamegraph.pl`` or load it in speedscope."""
        return self._node.profile(seconds=seconds, hz=hz, fmt="collapsed")

    def events(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """``GET /v1/admin/events`` — the server's structured-event ring."""
        return self._node.events(limit)

    def dump(self) -> Dict[str, Any]:
        """``POST /v1/admin/dump`` — the flight-recorder debug bundle."""
        return self._node.dump()

    def healthz(self) -> Dict[str, Any]:
        return self._node.healthz()

    def stats(self) -> Dict[str, Any]:
        return self._node.stats()

    def metrics_json(self) -> Dict[str, Any]:
        """The metrics registry document (``/v1/metrics?format=json``)."""
        return self._node.metrics_json()

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``/v1/metrics``)."""
        return self._node.metrics_text()

    # ------------------------------------------------------------- artifacts

    def artifacts(self) -> Dict[str, Any]:
        """``GET /v1/artifacts`` — the on-disk artifact inventory.

        A node lists its own store; a router answers per-node for the
        whole fleet.
        """
        return self._node.artifact_list()

    def artifact(self, tier: str, key: str) -> bytes:
        """``GET /v1/artifacts/<tier>/<key>`` — one raw ``.npz`` blob.

        The bytes are the store's own file format (the wire format *is*
        the store format); an absent blob raises
        :class:`~repro.cluster.client.NodeHTTPError` with code 404.
        """
        return self._node.artifact(tier, key)

    def artifact_put(self, tier: str, key: str, data: bytes, *,
                     reason: str = "replica") -> Dict[str, Any]:
        """``POST /v1/artifacts/<tier>/<key>`` — push one blob into a
        node's store (validated, atomically renamed).  Routers refuse
        pushes; target the holding node directly."""
        return self._node.artifact_put(tier, key, data, reason=reason)

    # ----------------------------------------------------------------- admin

    def flush(self, tier: Optional[str] = None) -> Dict[str, Any]:
        """``POST /v1/admin/flush`` — whole cache, or one tier
        (``bvh`` / ``result`` / ``core``)."""
        return self._node.flush(tier)

    def compact(self) -> Dict[str, Any]:
        """``POST /v1/admin/compact`` — force a store journal compaction."""
        return self._node.compact()
