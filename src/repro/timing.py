"""Wall-clock phase timing utilities.

The paper reports per-phase timings (Figure 8: ``T_tree``, ``T_mst`` for the
single-tree algorithm; ``T_tree``, ``T_wspd``, ``T_mst``, ``T_mark`` for
MemoGFK).  :class:`PhaseTimer` accumulates named phases so that every
algorithm in this repository can expose the same breakdown.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

# Thread -> active-phase registry.  Every `PhaseTimer.phase()` entry pushes
# the phase name onto the calling thread's stack and pops it on exit, so an
# out-of-band observer (the sampling profiler in `repro.obs.profiler`) can
# attribute a wall-clock sample of any thread to the engine phase it is
# executing.  Phase names are exactly the span-child names the trace layer
# emits (`resolve`, `tree`, `core`, `mst`, `tree_build`, `compute`, ...),
# which is what ties profiler samples back to spans.  Entries are removed
# as soon as a thread's stack empties, so an idle process holds no state.
# Individual dict/list operations are atomic under the GIL; `phase()` only
# ever touches its own thread's stack, and readers take defensive copies.
_PHASE_STACKS: Dict[int, List[str]] = {}


def _push_phase(name: str) -> None:
    ident = threading.get_ident()
    stack = _PHASE_STACKS.get(ident)
    if stack is None:
        stack = []
        _PHASE_STACKS[ident] = stack
    stack.append(name)


def _pop_phase() -> None:
    ident = threading.get_ident()
    stack = _PHASE_STACKS.get(ident)
    if stack:
        stack.pop()
    if not stack:
        _PHASE_STACKS.pop(ident, None)


def active_phase(ident: int) -> Optional[str]:
    """Innermost phase thread ``ident`` is executing, or ``None``."""
    stack = _PHASE_STACKS.get(ident)
    if not stack:
        return None
    try:
        return stack[-1]
    except IndexError:  # pragma: no cover - raced an exiting phase
        return None


def active_phases() -> Dict[int, str]:
    """Snapshot of {thread ident: innermost active phase}."""
    snapshot: Dict[int, str] = {}
    for ident, stack in list(_PHASE_STACKS.items()):
        if stack:
            try:
                snapshot[ident] = stack[-1]
            except IndexError:  # pragma: no cover - raced an exiting phase
                continue
    return snapshot


def phase_registry_size() -> int:
    """Number of threads currently inside at least one phase."""
    return len(_PHASE_STACKS)


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    A phase may be entered multiple times; durations accumulate.  Phases are
    reported in first-entry order, which matches the execution order of the
    pipelines in this library.

    Example
    -------
    >>> timer = PhaseTimer()
    >>> with timer.phase("tree"):
    ...     pass
    >>> with timer.phase("mst"):
    ...     pass
    >>> list(timer.totals) == ["tree", "mst"]
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring one entry into phase ``name``."""
        start = time.perf_counter()
        _push_phase(name)
        try:
            yield
        finally:
            _pop_phase()
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to phase ``name`` without running a block."""
        if seconds < 0:
            raise ValueError(f"negative duration for phase {name!r}: {seconds}")
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum over all phases, in seconds."""
        return sum(self.totals.values())

    def get(self, name: str) -> float:
        """Accumulated seconds for ``name`` (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def merged_with(self, other: "PhaseTimer") -> "PhaseTimer":
        """Return a new timer with phases of ``self`` and ``other`` summed."""
        merged = PhaseTimer(dict(self.totals))
        for name, seconds in other.totals.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """A copy of the phase table (phase name -> seconds)."""
        return dict(self.totals)


@contextmanager
def stopwatch() -> Iterator["_Stopwatch"]:
    """Measure a block; read ``.seconds`` afterwards.

    >>> with stopwatch() as sw:
    ...     pass
    >>> sw.seconds >= 0.0
    True
    """
    sw = _Stopwatch()
    start = time.perf_counter()
    try:
        yield sw
    finally:
        sw.seconds = time.perf_counter() - start


class _Stopwatch:
    """Result holder for :func:`stopwatch`."""

    seconds: float = 0.0
