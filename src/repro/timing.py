"""Wall-clock phase timing utilities.

The paper reports per-phase timings (Figure 8: ``T_tree``, ``T_mst`` for the
single-tree algorithm; ``T_tree``, ``T_wspd``, ``T_mst``, ``T_mark`` for
MemoGFK).  :class:`PhaseTimer` accumulates named phases so that every
algorithm in this repository can expose the same breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    A phase may be entered multiple times; durations accumulate.  Phases are
    reported in first-entry order, which matches the execution order of the
    pipelines in this library.

    Example
    -------
    >>> timer = PhaseTimer()
    >>> with timer.phase("tree"):
    ...     pass
    >>> with timer.phase("mst"):
    ...     pass
    >>> list(timer.totals) == ["tree", "mst"]
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring one entry into phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to phase ``name`` without running a block."""
        if seconds < 0:
            raise ValueError(f"negative duration for phase {name!r}: {seconds}")
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum over all phases, in seconds."""
        return sum(self.totals.values())

    def get(self, name: str) -> float:
        """Accumulated seconds for ``name`` (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def merged_with(self, other: "PhaseTimer") -> "PhaseTimer":
        """Return a new timer with phases of ``self`` and ``other`` summed."""
        merged = PhaseTimer(dict(self.totals))
        for name, seconds in other.totals.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """A copy of the phase table (phase name -> seconds)."""
        return dict(self.totals)


@contextmanager
def stopwatch() -> Iterator["_Stopwatch"]:
    """Measure a block; read ``.seconds`` afterwards.

    >>> with stopwatch() as sw:
    ...     pass
    >>> sw.seconds >= 0.0
    True
    """
    sw = _Stopwatch()
    start = time.perf_counter()
    try:
        yield sw
    finally:
        sw.seconds = time.perf_counter() - start


class _Stopwatch:
    """Result holder for :func:`stopwatch`."""

    seconds: float = 0.0
