"""Instrumented algorithm runs and device repricing.

A :class:`RunRecord` captures one algorithm execution: wall-clock and work
counters per phase.  ``simulated_seconds``/``simulated_rate`` price a record
on a :class:`~repro.kokkos.devices.DeviceSpec`; because counters are
device-independent, the same record yields every device column of a figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from repro.baselines.bentley_friedman import bentley_friedman_emst
from repro.baselines.dualtree_boruvka import dual_tree_emst
from repro.baselines.memogfk import memogfk_emst
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.kokkos.counters import CostCounters
from repro.kokkos.costmodel import simulate_seconds
from repro.kokkos.devices import DeviceSpec
from repro.metrics import mfeatures_per_second
from repro.timing import stopwatch

#: Per-algorithm cycles-per-counted-op calibration (see EXPERIMENTS.md).
#: The counters measure *algorithmic* work (distance evaluations, node
#: visits, ...) but real implementations differ in constant factors —
#: MemoGFK's recursion-heavy WSPD/BCP does far more per counted op than the
#: flat batched traversal kernels.  Each factor is calibrated ONCE on the
#: Hacc reference workload against the paper's sequential Figure-1 rates
#: (ArborX is the 1.0 anchor), then held fixed for every dataset, size and
#: device, so all cross-dataset/scaling/device shape comes from measured
#: counters.  BF78 is not in the paper; it reuses the MLPACK factor as the
#: closest implementation style (recursive kd-tree traversals).
ALGORITHM_WORK_SCALE: Dict[str, float] = {
    "ArborX": 1.0,
    "MemoGFK": 2.881,
    "MLPACK": 5.084,
    "BF78": 5.084,
}

#: Algorithms whose multithreaded sort does not parallelize.  The paper
#: reports this limitation for the ArborX CPU backend specifically
#: (``Kokkos::BinSort`` replaced by a serial ``std::sort``, Section 4.2);
#: MemoGFK's parallel Kruskal has no such defect, so CPU-MT devices are
#: repriced with a parallel sort for every other algorithm.
SERIAL_SORT_ALGORITHMS = frozenset({"ArborX"})


@dataclass
class RunRecord:
    """One instrumented algorithm execution."""

    algorithm: str
    dataset: str
    n: int
    dim: int
    wall_seconds: float
    phase_wall: Dict[str, float] = field(default_factory=dict)
    phase_counters: Dict[str, CostCounters] = field(default_factory=dict)
    total_weight: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_counters(self) -> CostCounters:
        """All phases merged."""
        total = CostCounters()
        for c in self.phase_counters.values():
            total.add(c)
        return total

    @property
    def features(self) -> int:
        """``n * d`` (the paper's throughput denominator)."""
        return self.n * self.dim


def run_arborx(points: np.ndarray, dataset: str,
               config: SingleTreeConfig = SingleTreeConfig()) -> RunRecord:
    """Run the single-tree EMST (the paper's ArborX implementation)."""
    with stopwatch() as sw:
        result = emst(points, config=config)
    return RunRecord(
        algorithm="ArborX",
        dataset=dataset,
        n=points.shape[0],
        dim=points.shape[1],
        wall_seconds=sw.seconds,
        phase_wall=dict(result.phases),
        phase_counters=dict(result.counters),
        total_weight=result.total_weight,
        extra={"iterations": float(result.n_iterations)},
    )


def run_arborx_mrd(points: np.ndarray, dataset: str, k_pts: int,
                   config: SingleTreeConfig = SingleTreeConfig()) -> RunRecord:
    """Run the single-tree m.r.d. EMST (Section 4.5)."""
    with stopwatch() as sw:
        result = mutual_reachability_emst(points, k_pts, config=config)
    return RunRecord(
        algorithm="ArborX",
        dataset=dataset,
        n=points.shape[0],
        dim=points.shape[1],
        wall_seconds=sw.seconds,
        phase_wall=dict(result.phases),
        phase_counters=dict(result.counters),
        total_weight=result.total_weight,
        extra={"iterations": float(result.n_iterations),
               "k_pts": float(k_pts)},
    )


def run_memogfk(points: np.ndarray, dataset: str, *,
                k_pts: int = 1, lazy: bool = True) -> RunRecord:
    """Run the WSPD-based baseline (Wang et al. 2021, "MemoGFK")."""
    with stopwatch() as sw:
        result = memogfk_emst(points, k_pts=k_pts, lazy=lazy)
    return RunRecord(
        algorithm="MemoGFK",
        dataset=dataset,
        n=points.shape[0],
        dim=points.shape[1],
        wall_seconds=sw.seconds,
        phase_wall=dict(result.phases),
        phase_counters=dict(result.counters),
        total_weight=result.total_weight,
        extra={"n_pairs": float(result.n_pairs),
               "n_bcp": float(result.n_bcp_computed)},
    )


def run_mlpack(points: np.ndarray, dataset: str) -> RunRecord:
    """Run the dual-tree Borůvka baseline (March et al. 2010, "MLPACK")."""
    counters = CostCounters()
    with stopwatch() as sw:
        u, v, w = dual_tree_emst(points, counters=counters)
    return RunRecord(
        algorithm="MLPACK",
        dataset=dataset,
        n=points.shape[0],
        dim=points.shape[1],
        wall_seconds=sw.seconds,
        phase_wall={"total": sw.seconds},
        phase_counters={"total": counters},
        total_weight=float(np.sum(w)),
    )


def run_bentley_friedman(points: np.ndarray, dataset: str) -> RunRecord:
    """Run the 1978 Prim+kd-tree baseline."""
    counters = CostCounters()
    with stopwatch() as sw:
        u, v, w = bentley_friedman_emst(points, counters=counters)
    return RunRecord(
        algorithm="BF78",
        dataset=dataset,
        n=points.shape[0],
        dim=points.shape[1],
        wall_seconds=sw.seconds,
        phase_wall={"total": sw.seconds},
        phase_counters={"total": counters},
        total_weight=float(np.sum(w)),
    )


def simulated_seconds(record: RunRecord, device: DeviceSpec,
                      phases: Optional[list] = None) -> float:
    """Simulated execution time of a record on ``device``.

    ``phases`` restricts pricing to a subset (e.g. only ``mst``); by
    default all phases are summed.
    """
    scale = ALGORITHM_WORK_SCALE.get(record.algorithm, 1.0)
    if device.serial_sort and record.algorithm not in SERIAL_SORT_ALGORITHMS:
        device = replace(device, serial_sort=False)
    total = 0.0
    for name, counters in record.phase_counters.items():
        if phases is not None and name not in phases:
            continue
        total += simulate_seconds(counters.scaled(scale), device).seconds
    return total


def simulated_rate(record: RunRecord, device: DeviceSpec) -> float:
    """Simulated throughput in MFeatures/sec (the paper's metric)."""
    seconds = simulated_seconds(record, device)
    return mfeatures_per_second(record.n, record.dim, seconds)


def wall_rate(record: RunRecord) -> float:
    """Wall-clock throughput of the NumPy execution (secondary metric)."""
    return mfeatures_per_second(record.n, record.dim, record.wall_seconds)
