"""Figure 5: sequential EMST comparison across all twelve datasets.

One bar group per dataset with MLPACK, MemoGFK(S) and ArborX(S) rates on a
single EPYC 7763 core.  Paper shape to reproduce: MLPACK slowest
everywhere; ArborX competitive with MemoGFK (faster on the
trajectory-style sets); GeoLife24M3D is ArborX's worst case (Z-curve
under-resolution); rates roughly dimension-independent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures.common import (
    FIGURE_DATASETS,
    MAX_N_MLPACK,
    arborx_record,
    memogfk_record,
    mlpack_record,
    scaled_size,
)
from repro.bench.harness import simulated_rate
from repro.bench.tables import render_table, save_report
from repro.kokkos.devices import EPYC_7763_SEQ

#: Paper Figure 5 values (MFeatures/sec), dataset -> (MLPACK, MemoGFK, ArborX).
PAPER: Dict[str, Tuple[float, float, float]] = {
    "GeoLife24M3D": (0.7, 1.1, 0.1),
    "RoadNetwork3D": (0.5, 1.2, 1.1),
    "Ngsim": (0.4, 0.5, 0.6),
    "NgsimLocation3": (0.5, 0.6, 0.9),
    "PortoTaxi": (0.3, 0.5, 0.6),
    "VisualVar10M2D": (0.3, 0.9, 0.9),
    "VisualVar10M3D": (0.3, 0.7, 0.7),
    "Normal100M3": (0.2, 0.5, 0.6),
    "Normal100M2": (0.3, 0.7, 0.8),
    "Uniform100M2": (0.3, 0.8, 0.8),
    "Uniform100M3": (0.2, 0.5, 0.5),
    "Hacc37M": (0.2, 0.7, 0.8),
}


def run(quick: bool = False) -> Tuple[List[Dict], str]:
    """Regenerate the sequential comparison; returns (rows, table)."""
    n_baselines = 600 if quick else MAX_N_MLPACK
    datasets = FIGURE_DATASETS[:3] if quick else FIGURE_DATASETS
    rows: List[Dict] = []
    for name in datasets:
        # The pure-Python baselines are capped; ArborX runs at the
        # dataset's globally scaled size (rates are per-feature, so the
        # comparison is fair — sequential pricing has no saturation term).
        n_baseline = min(scaled_size(name), n_baselines)
        n_arborx = min(scaled_size(name), 4_000) if quick \
            else scaled_size(name)
        records = {
            "MLPACK": mlpack_record(name, n_baseline),
            "MemoGFK": memogfk_record(name, n_baseline),
            "ArborX": arborx_record(name, n_arborx),
        }
        paper = PAPER.get(name, (None, None, None))
        row = {"dataset": name, "n": n_arborx}
        for i, alg in enumerate(("MLPACK", "MemoGFK", "ArborX")):
            row[alg] = simulated_rate(records[alg], EPYC_7763_SEQ)
            row[f"{alg}_paper"] = paper[i]
        rows.append(row)

    table = render_table(
        ["dataset", "MLPACK", "MemoGFK", "ArborX",
         "paper(ML/GFK/ArbX)"],
        [[r["dataset"], r["MLPACK"], r["MemoGFK"], r["ArborX"],
          f'{r["MLPACK_paper"]}/{r["MemoGFK_paper"]}/{r["ArborX_paper"]}']
         for r in rows],
        title=("Figure 5: sequential MFeatures/sec on EPYC 7763 "
               "(1 core; ArborX at scaled dataset sizes, baselines capped "
               f"at n={n_baselines})"))
    if not quick:
        save_report("fig5_sequential.txt", table)
    return rows, table


if __name__ == "__main__":
    print(run()[1])
