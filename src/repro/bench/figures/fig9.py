"""Figure 9: mutual-reachability distance — effect of k_pts (Section 4.5).

For Normal100M3 and Hacc37M, k_pts in {2, 4, 8, 16}: core-distance time
(T_core) and total m.r.d. MST time (T_emst) for MemoGFK (EPYC MT) and
ArborX (A100), plus ArborX's speed-up over MemoGFK.  Paper shape: T_core
grows with k_pts for both, but faster for the GPU (k-list maintenance
diverges warps), so the ArborX-over-MemoGFK core speed-up *drops* as k_pts
rises (e.g. Hacc37M: ~20x at k=2 down to ~12.7x at k=16); the Borůvka
kernel cost stays within ~30% of its k=2 value.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures.common import (
    MAX_N_MEMOGFK,
    dataset_points,
    scaled_size,
)
from repro.bench.harness import (
    run_arborx_mrd,
    run_memogfk,
    simulated_seconds,
)
from repro.bench.tables import render_table, save_report
from repro.kokkos.devices import A100, EPYC_7763_MT

DATASETS = ["Normal100M3", "Hacc37M"]
K_VALUES = [2, 4, 8, 16]


def run(quick: bool = False) -> Tuple[List[Dict], str]:
    """Regenerate the k_pts sweep; returns (rows, table)."""
    datasets = DATASETS[1:] if quick else DATASETS
    ks = [2, 8] if quick else K_VALUES
    rows: List[Dict] = []
    for name in datasets:
        n_arborx = min(scaled_size(name), 4_000) if quick \
            else scaled_size(name)
        n_memogfk = min(n_arborx, 800 if quick else MAX_N_MEMOGFK)
        pts_arborx = dataset_points(name, n_arborx)
        pts_memogfk = dataset_points(name, n_memogfk)
        for k in ks:
            arborx = run_arborx_mrd(pts_arborx, name, k)
            memogfk = run_memogfk(pts_memogfk, name, k_pts=k)

            a_core = simulated_seconds(arborx, A100, phases=["core"])
            a_total = simulated_seconds(arborx, A100)
            a_mst = simulated_seconds(arborx, A100, phases=["mst"])
            g_core = simulated_seconds(memogfk, EPYC_7763_MT,
                                       phases=["core"])
            g_total = simulated_seconds(memogfk, EPYC_7763_MT)

            # Normalize to per-feature seconds so the two implementations
            # (run at different n) compare fairly, then express speedups.
            a_feat = arborx.features
            g_feat = memogfk.features
            core_speedup = (g_core / g_feat) / (a_core / a_feat) \
                if a_core > 0 else None
            total_speedup = (g_total / g_feat) / (a_total / a_feat)
            rows.append({
                "dataset": name,
                "k_pts": k,
                "Tcore_ArborX": a_core,
                "Temst_ArborX": a_total,
                "Tmst_kernel_ArborX": a_mst,
                "Tcore_MemoGFK": g_core,
                "Temst_MemoGFK": g_total,
                "core_speedup": core_speedup,
                "total_speedup": total_speedup,
            })

    table = render_table(
        ["dataset", "k_pts", "Tcore GFK(MT)", "Temst GFK(MT)",
         "Tcore ArbX(A100)", "Temst ArbX(A100)", "core x", "total x"],
        [[r["dataset"], r["k_pts"], r["Tcore_MemoGFK"], r["Temst_MemoGFK"],
          r["Tcore_ArborX"], r["Temst_ArborX"], r["core_speedup"],
          r["total_speedup"]] for r in rows],
        title="Figure 9: mutual reachability, k_pts sweep "
              "(times simulated; speedups per-feature normalized)")
    if not quick:
        save_report("fig9_mrd.txt", table)
    return rows, table


if __name__ == "__main__":
    print(run()[1])
