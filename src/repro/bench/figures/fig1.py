"""Figure 1: headline MFeatures/sec on the Hacc37M cosmology dataset.

Paper values: MLPACK 0.2, MemoGFK 0.7, ArborX 0.8 (sequential);
MemoGFK 16.3, ArborX 17.1 (multithreaded); ArborX 270.7 (A100), 180.3
(MI250X).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures.common import (
    arborx_record,
    memogfk_record,
    mlpack_record,
    scaled_size,
)
from repro.bench.harness import simulated_rate
from repro.bench.tables import render_table, save_report
from repro.kokkos.devices import A100, EPYC_7763_MT, EPYC_7763_SEQ, MI250X_GCD

PAPER = {
    ("MLPACK", "Sequential"): 0.2,
    ("MemoGFK", "Sequential"): 0.7,
    ("ArborX", "Sequential"): 0.8,
    ("MemoGFK", "Multithreaded"): 16.3,
    ("ArborX", "Multithreaded"): 17.1,
    ("ArborX", "A100"): 270.7,
    ("ArborX", "MI250X"): 180.3,
}


def run(quick: bool = False) -> Tuple[List[Dict], str]:
    """Regenerate the headline comparison; returns (rows, rendered table)."""
    n_arborx = 4_000 if quick else scaled_size("Hacc37M")
    n_memogfk = 1_000 if quick else 3_000
    n_mlpack = 500 if quick else 1_500

    arborx = arborx_record("Hacc37M", n_arborx)
    memogfk = memogfk_record("Hacc37M", n_memogfk)
    mlpack = mlpack_record("Hacc37M", n_mlpack)

    rows: List[Dict] = []
    for record, platform, device in (
        (mlpack, "Sequential", EPYC_7763_SEQ),
        (memogfk, "Sequential", EPYC_7763_SEQ),
        (arborx, "Sequential", EPYC_7763_SEQ),
        (memogfk, "Multithreaded", EPYC_7763_MT),
        (arborx, "Multithreaded", EPYC_7763_MT),
        (arborx, "A100", A100),
        (arborx, "MI250X", MI250X_GCD),
    ):
        rate = simulated_rate(record, device)
        rows.append({
            "algorithm": record.algorithm,
            "platform": platform,
            "n": record.n,
            "mfeatures_per_sec": rate,
            "paper": PAPER.get((record.algorithm, platform)),
        })

    table = render_table(
        ["algorithm", "platform", "n", "MFeat/s (sim)", "paper"],
        [[r["algorithm"], r["platform"], r["n"],
          r["mfeatures_per_sec"], r["paper"]] for r in rows],
        title="Figure 1: EMST throughput on Hacc37M (simulated devices)")
    if not quick:
        save_report("fig1_headline.txt", table)
    return rows, table


if __name__ == "__main__":
    print(run()[1])
