"""Per-figure benchmark drivers (one module per paper figure).

Each driver regenerates the rows/series of its figure and renders an ASCII
table saved under ``reports/``.  See ``EXPERIMENTS.md`` for the
paper-vs-measured record of every figure.
"""

from repro.bench.figures import (  # noqa: F401
    ablation,
    common,
    fig1,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
)

__all__ = ["common", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9",
           "ablation"]
