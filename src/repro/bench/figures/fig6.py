"""Figure 6: parallel EMST comparison across all twelve datasets.

Bars per dataset: MemoGFK on EPYC 7763 (64 cores), ArborX on EPYC 7763,
Nvidia A100 and AMD MI250X (single GCD).  Paper shape: A100 45-270
MFeatures/sec and 4-24x over MemoGFK-MT; MI250X qualitatively similar at
~2/3 of A100; best case Hacc37M, worst GeoLife24M3D; RoadNetwork3D low on
GPUs because the dataset is too small to saturate them (reproduced here by
scaling every dataset with the same divisor, which leaves RoadNetwork3D
tiny).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures.common import (
    FIGURE_DATASETS,
    MAX_N_MEMOGFK,
    arborx_record,
    memogfk_record,
    scaled_size,
)
from repro.bench.harness import simulated_rate
from repro.bench.tables import render_table, save_report
from repro.kokkos.devices import A100, EPYC_7763_MT, MI250X_GCD

#: Paper Figure 6 (MFeatures/sec): dataset -> (MemoGFK-MT, ArborX-MT,
#: ArborX-A100, ArborX-MI250X).
PAPER: Dict[str, Tuple[float, float, float, float]] = {
    "GeoLife24M3D": (12, 1, 45, 21),
    "RoadNetwork3D": (6, 10, 79, 26),
    "Ngsim": (9, 7, 180, 103),
    "NgsimLocation3": (8, 9, 197, 117),
    "PortoTaxi": (10, 6, 198, 129),
    "VisualVar10M2D": (11, 13, 227, 140),
    "VisualVar10M3D": (13, 15, 238, 150),
    "Normal100M3": (12, 10, 212, 131),
    "Normal100M2": (13, 8, 243, 162),
    "Uniform100M2": (16, 8, 224, 151),
    "Uniform100M3": (14, 9, 182, 120),
    "Hacc37M": (16, 17, 270, 180),
}


def run(quick: bool = False) -> Tuple[List[Dict], str]:
    """Regenerate the parallel comparison; returns (rows, table)."""
    datasets = FIGURE_DATASETS[:3] if quick else FIGURE_DATASETS
    rows: List[Dict] = []
    for name in datasets:
        n_arborx = min(scaled_size(name), 4_000) if quick \
            else scaled_size(name)
        n_memogfk = min(n_arborx, 1_000 if quick else MAX_N_MEMOGFK)
        arborx = arborx_record(name, n_arborx)
        memogfk = memogfk_record(name, n_memogfk)
        paper = PAPER.get(name, (None,) * 4)
        rows.append({
            "dataset": name,
            "n_arborx": n_arborx,
            "MemoGFK_MT": simulated_rate(memogfk, EPYC_7763_MT),
            "ArborX_MT": simulated_rate(arborx, EPYC_7763_MT),
            "ArborX_A100": simulated_rate(arborx, A100),
            "ArborX_MI250X": simulated_rate(arborx, MI250X_GCD),
            "paper": paper,
        })

    table = render_table(
        ["dataset", "n", "GFK-MT", "ArbX-MT", "ArbX-A100", "ArbX-MI250X",
         "paper(GFK/MT/A100/MI)"],
        [[r["dataset"], r["n_arborx"], r["MemoGFK_MT"], r["ArborX_MT"],
          r["ArborX_A100"], r["ArborX_MI250X"],
          "/".join(str(p) for p in r["paper"])] for r in rows],
        title="Figure 6: parallel MFeatures/sec (simulated devices, "
              "dataset sizes scaled by one global divisor)")
    if not quick:
        save_report("fig6_parallel.txt", table)
    return rows, table


if __name__ == "__main__":
    print(run()[1])
