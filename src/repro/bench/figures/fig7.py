"""Figure 7: throughput vs sample count (the scaling study, Section 4.3).

For Hacc497M, Normal300M2 and Uniform300M3 the paper subsamples each
dataset at exponentially spaced sizes and plots MFeatures/sec for MemoGFK
(EPYC MT) and ArborX (A100).  Shape to reproduce: both curves *rise* with
n (evidence of asymptotically linear cost — a superlinear algorithm would
fall) and then saturate; ArborX saturates at a characteristic size while
MemoGFK keeps climbing longer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from repro.bench.figures.common import MAX_N_MEMOGFK, dataset_points
from repro.bench.harness import run_arborx, run_memogfk, simulated_rate
from repro.bench.tables import render_table, save_report
from repro.data.sampling import sample_preserving
from repro.kokkos.devices import A100, EPYC_7763_MT

DATASETS = ["Hacc497M", "Normal300M2", "Uniform300M3"]

#: Sweep sizes (the paper sweeps 1e4..1e8; scaled to this repo's regime).
SIZES = [1_000, 3_000, 10_000, 30_000, 100_000]


def run(quick: bool = False) -> Tuple[List[Dict], str]:
    """Regenerate the scaling curves; returns (rows, table)."""
    sizes = [1_000, 4_000] if quick else SIZES
    datasets = DATASETS[:1] if quick else DATASETS
    rows: List[Dict] = []
    for name in datasets:
        base = dataset_points(name, max(sizes))
        for m in sizes:
            sub = sample_preserving(base, m, seed=1)
            arborx = run_arborx(sub, name)
            row = {
                "dataset": name,
                "n": m,
                "ArborX_A100": simulated_rate(arborx, A100),
            }
            if m <= MAX_N_MEMOGFK:
                memogfk = run_memogfk(sub, name)
                row["MemoGFK_MT"] = simulated_rate(memogfk, EPYC_7763_MT)
            else:
                row["MemoGFK_MT"] = None
            rows.append(row)

    # Monotone-rise sanity: rates should not collapse at large n.
    for name in datasets:
        series = [r["ArborX_A100"] for r in rows if r["dataset"] == name]
        if len(series) >= 2 and series[-1] < series[0]:
            raise AssertionError(
                f"{name}: ArborX rate fell with n "
                f"({series[0]:.1f} -> {series[-1]:.1f}); "
                "superlinear growth contradicts Figure 7")

    table = render_table(
        ["dataset", "n", "MemoGFK-MT", "ArborX-A100"],
        [[r["dataset"], r["n"],
          r["MemoGFK_MT"] if r["MemoGFK_MT"] is not None else "-",
          r["ArborX_A100"]] for r in rows],
        title="Figure 7: MFeatures/sec vs number of samples "
              "(rates rise then saturate; linear asymptotic cost)")
    if not quick:
        save_report("fig7_scaling.txt", table)
    return rows, table


if __name__ == "__main__":
    print(run()[1])
