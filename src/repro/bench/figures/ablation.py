"""Ablation of the paper's two optimizations (Section 3) + extras.

Not a paper figure, but DESIGN.md commits to quantifying the design
choices the paper motivates qualitatively:

* Optimization 1 (subtree skipping) and Optimization 2 (component upper
  bounds), toggled independently — measuring distance evaluations, node
  visits and simulated A100 time;
* lazy (memoized) vs eager BCP in the WSPD baseline;
* the Bentley–Friedman 1978 baseline, showing the redundant-query problem
  the later algorithms fix.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures.common import dataset_points
from repro.bench.harness import (
    run_arborx,
    run_bentley_friedman,
    run_memogfk,
    simulated_seconds,
)
from repro.bench.tables import render_table, save_report
from repro.core.boruvka_emst import SingleTreeConfig
from repro.kokkos.devices import A100, EPYC_7763_SEQ

DATASETS = ["Hacc37M", "Uniform100M2"]


def run(quick: bool = False) -> Tuple[List[Dict], str]:
    """Run the optimization ablation; returns (rows, table)."""
    n = 2_000 if quick else 8_000
    rows: List[Dict] = []
    for name in DATASETS[:1] if quick else DATASETS:
        points = dataset_points(name, n)
        for skip in (True, False):
            for bounds in (True, False):
                config = SingleTreeConfig(subtree_skipping=skip,
                                          component_bounds=bounds)
                record = run_arborx(points, name, config=config)
                counters = record.total_counters
                rows.append({
                    "dataset": name,
                    "variant": (f"skip={'on' if skip else 'off'},"
                                f"bounds={'on' if bounds else 'off'}"),
                    "n": n,
                    "distance_evals": counters.distance_evals,
                    "nodes_visited": counters.nodes_visited,
                    "sim_a100_seconds": simulated_seconds(record, A100),
                })

    # The paper's proposed GeoLife fix (Section 4.1): double-width Morton
    # codes restore Z-curve resolution under extreme density skew.
    n_geo = 1_000 if quick else 10_000
    geo = dataset_points("GeoLife24M3D", n_geo)
    for high_res, label in ((False, "geolife-morton-64bit"),
                            (True, "geolife-morton-128bit")):
        config = SingleTreeConfig(high_resolution=high_res)
        record = run_arborx(geo, "GeoLife24M3D", config=config)
        counters = record.total_counters
        rows.append({
            "dataset": "GeoLife24M3D",
            "variant": label,
            "n": n_geo,
            "distance_evals": counters.distance_evals,
            "nodes_visited": counters.nodes_visited,
            "sim_a100_seconds": simulated_seconds(record, A100),
        })

    # Lazy vs eager BCP (MemoGFK's "memo") and the 1978 baseline.
    n_small = 500 if quick else 2_000
    points = dataset_points("Hacc37M", n_small)
    for lazy in (True, False):
        record = run_memogfk(points, "Hacc37M", lazy=lazy)
        rows.append({
            "dataset": "Hacc37M",
            "variant": f"memogfk-{'lazy' if lazy else 'eager'}",
            "n": n_small,
            "distance_evals": record.total_counters.distance_evals,
            "nodes_visited": record.total_counters.nodes_visited,
            "sim_a100_seconds": simulated_seconds(record, EPYC_7763_SEQ),
        })
    bf = run_bentley_friedman(points, "Hacc37M")
    rows.append({
        "dataset": "Hacc37M",
        "variant": "bentley-friedman-1978",
        "n": n_small,
        "distance_evals": bf.total_counters.distance_evals,
        "nodes_visited": bf.total_counters.nodes_visited,
        "sim_a100_seconds": simulated_seconds(bf, EPYC_7763_SEQ),
    })

    table = render_table(
        ["dataset", "variant", "n", "dist evals", "nodes visited",
         "sim seconds"],
        [[r["dataset"], r["variant"], r["n"], r["distance_evals"],
          r["nodes_visited"], r["sim_a100_seconds"]] for r in rows],
        title="Ablation: Optimizations 1 & 2, lazy vs eager BCP, BF78 "
              "(single-tree rows priced on A100; baseline rows on 1 core)")
    if not quick:
        save_report("ablation_optimizations.txt", table)
    return rows, table


if __name__ == "__main__":
    print(run()[1])
