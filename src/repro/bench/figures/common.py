"""Shared configuration of the figure drivers.

The paper's datasets are 0.4M-497M points; this repository scales every
dataset down by a single global factor ``SCALE_DIVISOR``, chosen so the
Hacc37M stand-in lands on the n=30,000 calibration anchor.  Using one
divisor for all datasets preserves their *relative* sizes — which is what
produces the paper's RoadNetwork3D observation (too small to saturate a
GPU) without any special-casing.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.data import generate

#: Paper dataset sizes (points), Section 4 "Datasets".
PAPER_SIZES: Dict[str, int] = {
    "GeoLife24M3D": 24_000_000,
    "RoadNetwork3D": 400_000,
    "Ngsim": 12_000_000,
    "NgsimLocation3": 4_000_000,
    "PortoTaxi": 81_000_000,
    "VisualVar10M2D": 10_000_000,
    "VisualVar10M3D": 10_000_000,
    "Normal100M3": 100_000_000,
    "Normal100M2": 100_000_000,
    "Uniform100M2": 100_000_000,
    "Uniform100M3": 100_000_000,
    "Hacc37M": 37_000_000,
    "Hacc497M": 497_000_000,
    "Normal300M2": 300_000_000,
    "Uniform300M3": 300_000_000,
}

#: One global scale factor: Hacc37M -> 30,000 points (calibration anchor).
SCALE_DIVISOR = 37_000_000 / 30_000

#: Figure 5/6 dataset order (x axis of the paper's bar charts).
FIGURE_DATASETS: List[str] = [
    "GeoLife24M3D", "RoadNetwork3D", "Ngsim", "NgsimLocation3", "PortoTaxi",
    "VisualVar10M2D", "VisualVar10M3D", "Normal100M3", "Normal100M2",
    "Uniform100M2", "Uniform100M3", "Hacc37M",
]

#: Figure 8 dataset subset (the paper's phase-breakdown selection).
FIG8_DATASETS: List[str] = [
    "GeoLife24M3D", "RoadNetwork3D", "Normal100M3", "Normal100M2",
    "PortoTaxi", "Hacc37M",
]

#: Hard ceilings keeping the pure-Python baselines affordable.
MAX_N_ARBORX = 82_000
MAX_N_MEMOGFK = 4_000
MAX_N_MLPACK = 1_500


def scaled_size(name: str, cap: int = MAX_N_ARBORX) -> int:
    """Scaled-down point count of a paper dataset, capped at ``cap``."""
    n = int(round(PAPER_SIZES[name] / SCALE_DIVISOR))
    return int(np.clip(n, 64, cap))


def dataset_points(name: str, n: int, seed: int = 0):
    """Generate the named dataset at size ``n`` (thin alias)."""
    return generate(name, n, seed=seed)


# ---------------------------------------------------------------------------
# Cross-figure record cache: several figures price the same (algorithm,
# dataset, size) run on different devices; since counters are
# device-independent, one physical execution serves them all.

_RECORD_CACHE: Dict[tuple, object] = {}


def arborx_record(name: str, n: int, config=None):
    """Cached instrumented single-tree run."""
    from repro.bench.harness import run_arborx
    from repro.core.boruvka_emst import SingleTreeConfig

    config = config if config is not None else SingleTreeConfig()
    key = ("arborx", name, n, config)
    if key not in _RECORD_CACHE:
        _RECORD_CACHE[key] = run_arborx(dataset_points(name, n), name,
                                        config=config)
    return _RECORD_CACHE[key]


def memogfk_record(name: str, n: int, *, k_pts: int = 1, lazy: bool = True):
    """Cached instrumented MemoGFK run."""
    from repro.bench.harness import run_memogfk

    key = ("memogfk", name, n, k_pts, lazy)
    if key not in _RECORD_CACHE:
        _RECORD_CACHE[key] = run_memogfk(dataset_points(name, n), name,
                                         k_pts=k_pts, lazy=lazy)
    return _RECORD_CACHE[key]


def mlpack_record(name: str, n: int):
    """Cached instrumented dual-tree run."""
    from repro.bench.harness import run_mlpack

    key = ("mlpack", name, n)
    if key not in _RECORD_CACHE:
        _RECORD_CACHE[key] = run_mlpack(dataset_points(name, n), name)
    return _RECORD_CACHE[key]


def clear_record_cache() -> None:
    """Drop all cached runs (tests use this for isolation)."""
    _RECORD_CACHE.clear()
