"""Figure 8: phase breakdown and per-phase parallel speed-ups.

(a) MemoGFK's four phases (T_mark, T_mst, T_tree, T_wspd): sequential vs
multithreaded times and the speed-up ratio per phase.  Paper shape: WSPD
dominates sequentially but scales well (up to ~57x); tree construction is
cheap sequentially but scales poorly, becoming the parallel bottleneck.

(b) ArborX's two phases (T_mst, T_tree): sequential CPU vs A100 times and
speed-ups.  Paper shape: both phases scale by hundreds (best ~350-420x)
except on datasets too small to saturate the GPU (RoadNetwork3D).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures.common import (
    FIG8_DATASETS,
    MAX_N_MEMOGFK,
    arborx_record,
    memogfk_record,
    scaled_size,
)
from repro.bench.harness import simulated_seconds
from repro.bench.tables import render_table, save_report
from repro.kokkos.devices import A100, EPYC_7763_MT, EPYC_7763_SEQ

MEMOGFK_PHASES = ["mark", "mst", "tree", "wspd"]
ARBORX_PHASES = ["mst", "tree"]


def run(quick: bool = False) -> Tuple[List[Dict], str]:
    """Regenerate both phase-breakdown panels; returns (rows, table)."""
    datasets = FIG8_DATASETS[:2] if quick else FIG8_DATASETS
    rows: List[Dict] = []

    for name in datasets:
        n = min(scaled_size(name), 800 if quick else MAX_N_MEMOGFK)
        record = memogfk_record(name, n)
        for phase in MEMOGFK_PHASES:
            seq = simulated_seconds(record, EPYC_7763_SEQ, phases=[phase])
            mt = simulated_seconds(record, EPYC_7763_MT, phases=[phase])
            rows.append({
                "panel": "a:MemoGFK",
                "dataset": name,
                "n": n,
                "phase": f"T_{phase}",
                "seq_seconds": seq,
                "parallel_seconds": mt,
                "speedup": seq / mt if mt > 0 else None,
            })

    for name in datasets:
        n = min(scaled_size(name), 4_000) if quick else scaled_size(name)
        record = arborx_record(name, n)
        for phase in ARBORX_PHASES:
            seq = simulated_seconds(record, EPYC_7763_SEQ, phases=[phase])
            gpu = simulated_seconds(record, A100, phases=[phase])
            rows.append({
                "panel": "b:ArborX",
                "dataset": name,
                "n": n,
                "phase": f"T_{phase}",
                "seq_seconds": seq,
                "parallel_seconds": gpu,
                "speedup": seq / gpu if gpu > 0 else None,
            })

    table = render_table(
        ["panel", "dataset", "n", "phase", "seq (s)", "parallel (s)",
         "speedup"],
        [[r["panel"], r["dataset"], r["n"], r["phase"], r["seq_seconds"],
          r["parallel_seconds"], r["speedup"]] for r in rows],
        title="Figure 8: phase breakdown — (a) MemoGFK seq vs 64-core MT; "
              "(b) ArborX seq vs A100")
    if not quick:
        save_report("fig8_phases.txt", table)
    return rows, table


if __name__ == "__main__":
    print(run()[1])
