"""Benchmark harness regenerating every figure of the paper's evaluation.

Each ``fig*`` module produces the rows/series of the corresponding paper
figure from the same three ingredients: a dataset generator
(:mod:`repro.data`), an instrumented algorithm run
(:mod:`repro.bench.harness`), and the simulated-device pricing
(:mod:`repro.kokkos.costmodel`).

A single physical execution of an algorithm yields device-independent work
counters, which are then *repriced* on every simulated device — so one run
produces the sequential, multithreaded, A100 and MI250X columns of a figure
consistently.

The ``benchmarks/`` directory at the repository root wraps these drivers in
``pytest-benchmark`` targets and writes the rendered tables to
``reports/``.
"""

from repro.bench.harness import (
    RunRecord,
    run_arborx,
    run_arborx_mrd,
    run_bentley_friedman,
    run_memogfk,
    run_mlpack,
    simulated_rate,
    simulated_seconds,
)
from repro.bench.tables import render_table, save_report

__all__ = [
    "RunRecord",
    "run_arborx",
    "run_arborx_mrd",
    "run_memogfk",
    "run_mlpack",
    "run_bentley_friedman",
    "simulated_seconds",
    "simulated_rate",
    "render_table",
    "save_report",
]
