"""ASCII table rendering and report persistence for the figure drivers."""

from __future__ import annotations

import os
from typing import List, Sequence

REPORTS_DIR = os.environ.get(
    "REPRO_REPORTS_DIR",
    os.path.join(os.path.dirname(__file__), "..", "..", "..", "reports"))


def render_table(headers: Sequence[str], rows: List[Sequence],
                 title: str = "") -> str:
    """Fixed-width ASCII table; floats get 3 significant digits."""

    def fmt(x) -> str:
        if isinstance(x, float):
            if x == 0:
                return "0"
            magnitude = abs(x)
            if magnitude >= 100:
                return f"{x:.0f}"
            if magnitude >= 1:
                return f"{x:.2f}"
            return f"{x:.3g}"
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_report(name: str, content: str) -> str:
    """Write a rendered figure table under ``reports/`` and return the path."""
    path = os.path.abspath(REPORTS_DIR)
    os.makedirs(path, exist_ok=True)
    full = os.path.join(path, name)
    with open(full, "w", encoding="utf-8") as fh:
        fh.write(content.rstrip() + "\n")
    return full
